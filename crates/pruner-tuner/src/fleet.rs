//! Cross-hardware continual-learning fleet: one workload suite tuned
//! across an ordered roster of devices in a single process.
//!
//! The fleet extends Momentum Transfer Learning ([`Mtl`](crate::Mtl)) from the
//! paper's two-platform setting to an N-device roster. One **shared
//! Siamese trunk** travels down the roster: each stage runs a full
//! supervised campaign with [`ModelSetup::Mtl`] seeded from the Siamese
//! state the previous stage left behind, then hands the evolved weights
//! to the next stage. Per-device calibration lives in **per-fingerprint
//! scoring heads** ([`pruner_cost::HeadSnapshot`], keyed by
//! [`GpuSpec::fingerprint`]): when the roster revisits a device, its head
//! is restored before the campaign starts, so the trunk keeps learning
//! across platforms while each device's calibration is preserved.
//!
//! After every stage the fleet re-scores **all** roster devices on fixed
//! probe sets (Spearman rank correlation between model scores and
//! negated simulator latencies — higher is better, `+1` means the model
//! ranks every probe exactly as fast as it really is). The resulting
//! stage × device score matrix is the anti-forgetting ledger:
//!
//! * **transfer efficiency** — `score[stage i][device j] − baseline[j]`,
//!   how much training on device *i* helped (or hurt) device *j*
//!   relative to the pre-trained model;
//! * **forgetting delta** — `score[last][j] − score[stage_of_j][j]`,
//!   how much device *j*'s score decayed between the stage that trained
//!   on it and the end of the roster (negative = forgot).
//!
//! Determinism: the fleet honors the repo-wide contract. Pre-training,
//! probe generation and probe scoring are seeded and single-banded;
//! campaigns are byte-identical at any thread count; and the fleet
//! manifest written after every stage makes a mid-roster kill+resume
//! byte-identical to an uninterrupted run. `tests/fleet.rs` pins both.
//!
//! See `docs/FLEET.md` for the on-disk layout and a worked example.

use crate::mtl::pretrain_pacm;
use crate::supervisor::{CampaignOutcome, Supervisor, SupervisorConfig};
use crate::tuner::{ModelSetup, Tuner, TunerConfig, TuningResult};
use pruner_cost::{CostModel, HeadSnapshot, PacmModel, Sample};
use pruner_gpu::{GpuSpec, Simulator};
use pruner_ir::Workload;
use pruner_sketch::Program;
use pruner_store::{write_atomic_durable, Store};
use pruner_trace::{NoopRecorder, Record, Recorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Manifest schema version; bumped on breaking layout changes.
pub const FLEET_MANIFEST_VERSION: u32 = 1;

/// Seed salt deriving the pre-training sample stream from the fleet seed.
const PRETRAIN_SEED_SALT: u64 = 0xF1EE_7000_0000_0001;
/// Seed salt deriving per-device probe streams from the fleet seed.
const PROBE_SEED_SALT: u64 = 0xF1EE_7000_0000_0002;

/// Fleet policy: the roster, the suite, and the per-stage campaign knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Ordered device roster. Stages run in this order; a device may
    /// appear more than once (its head is restored on revisit).
    pub roster: Vec<GpuSpec>,
    /// The workload suite, with per-workload weights (every stage tunes
    /// the full suite).
    pub workloads: Vec<(Workload, u64)>,
    /// Per-stage campaign parameters (seed, rounds, threads, …). The
    /// same config drives every stage; determinism comes from the seeds
    /// inside, not the stage index.
    pub tuner: TunerConfig,
    /// MTL momentum folding each stage's target back into the Siamese.
    pub momentum: f32,
    /// Pre-training samples drawn per workload on the first roster
    /// device before stage 0.
    pub pretrain_per_workload: usize,
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Probe programs per workload per device for the anti-forgetting
    /// evaluation.
    pub probes_per_workload: usize,
    /// Fleet-level seed: pre-training sample stream and per-device probe
    /// streams derive from it (the campaigns use `tuner.seed`).
    pub seed: u64,
    /// State directory: the manifest (`fleet.json`), per-stage
    /// supervisor checkpoints (`stage-<s>.ckpt.json`) and — unless
    /// [`FleetConfig::store`] points elsewhere — the shared record store.
    pub state_dir: PathBuf,
    /// Shared measurement store for all stages (warm start is always on;
    /// replay filters by device fingerprint so stages never see another
    /// device's latencies). `None` runs storeless.
    pub store: Option<PathBuf>,
    /// Park the fleet after this many completed stages (counted across
    /// resumes) — the kill half of mid-roster kill+resume testing.
    pub halt_after_stages: Option<usize>,
    /// Supervision policy template for each stage; the fleet overrides
    /// the checkpoint path per stage.
    pub supervisor: SupervisorConfig,
}

impl FleetConfig {
    /// A scaled-down fleet for tests and quick demos: quick campaigns,
    /// small pre-train/probe sets, no deadlines.
    pub fn quick(roster: Vec<GpuSpec>, state_dir: PathBuf) -> FleetConfig {
        FleetConfig {
            roster,
            workloads: vec![(Workload::matmul(1, 128, 128, 128), 1)],
            tuner: TunerConfig::quick(),
            momentum: 0.99,
            pretrain_per_workload: 24,
            pretrain_epochs: 3,
            probes_per_workload: 16,
            seed: 42,
            state_dir,
            store: None,
            halt_after_stages: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// One device's line in the fleet summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDeviceSummary {
    /// Device display name.
    pub name: String,
    /// [`GpuSpec::fingerprint`] — the head key and the store replay key.
    pub fingerprint: String,
    /// Roster stage index that tuned this entry.
    pub stage: usize,
    /// Best weighted latency the stage's campaign reached, seconds.
    pub best_latency_s: f64,
    /// Programs measured by the stage's campaign.
    pub trials: u64,
}

/// One cell of the transfer-efficiency ledger: how training on one
/// device moved another device's probe score relative to baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPair {
    /// Stage index whose training produced this evaluation.
    pub stage: usize,
    /// Device the stage trained on.
    pub trained_on: String,
    /// Device being evaluated.
    pub evaluated: String,
    /// Probe Spearman after the stage (with the evaluated device's head
    /// restored, when one exists).
    pub score: f64,
    /// `score − baseline[evaluated]`: positive = transfer helped.
    pub delta_vs_baseline: f64,
}

/// One device's forgetting ledger entry: probe score right after its own
/// training stage vs. at the end of the roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgettingDelta {
    /// Device evaluated.
    pub device: String,
    /// Last roster stage that trained on this device.
    pub trained_stage: usize,
    /// Probe Spearman right after that stage.
    pub score_after_training: f64,
    /// Probe Spearman after the final stage.
    pub final_score: f64,
    /// `final_score − score_after_training`: negative = the fleet forgot
    /// this device as it moved on.
    pub delta: f64,
}

/// The anti-forgetting evaluation: baseline scores, the full stage ×
/// device score matrix, and the derived transfer/forgetting ledgers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTransferReport {
    /// Probe Spearman per roster device under the pre-trained model,
    /// before any stage ran (roster order).
    pub baseline: Vec<f64>,
    /// `probe_scores[i][j]`: device `j`'s probe Spearman after stage `i`
    /// completed (each row is a full re-scoring of the roster).
    pub probe_scores: Vec<Vec<f64>>,
    /// Every (trained-on, evaluated) pair, stage-major.
    pub transfer: Vec<TransferPair>,
    /// One entry per roster stage's device: how much its score decayed
    /// after the fleet moved on.
    pub forgetting: Vec<ForgettingDelta>,
}

/// Everything a completed fleet run produced. Serializes byte-identically
/// across thread counts and across kill+resume (`tests/fleet.rs` pins
/// both); host-time fields are excluded by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// Per-stage device summaries, roster order.
    pub devices: Vec<FleetDeviceSummary>,
    /// Per-stage campaign results, roster order.
    pub results: Vec<TuningResult>,
    /// The transfer/forgetting ledgers.
    pub report: FleetTransferReport,
}

/// How a fleet run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetStatus {
    /// Every roster stage completed; the result is final.
    Completed,
    /// The fleet parked mid-roster ([`FleetConfig::halt_after_stages`] or
    /// a stage hit its wall deadline); the manifest on disk resumes it.
    Parked,
}

/// The outcome of one [`Fleet::run`] call.
#[derive(Debug)]
pub struct FleetRun {
    /// Completed or parked.
    pub status: FleetStatus,
    /// Stages completed so far (across resumes).
    pub stages_done: usize,
    /// The final result; `None` while parked.
    pub result: Option<FleetResult>,
}

/// The crash-safe on-disk fleet state, written atomically after every
/// completed stage. A fleet constructed over an existing manifest resumes
/// from `stages_done` and reproduces the uninterrupted bytes exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FleetManifest {
    version: u32,
    stages_done: usize,
    siamese: PacmModel,
    /// Per-fingerprint heads as a vec of pairs — deterministic
    /// serialization order (insertion order), unlike a map.
    heads: Vec<(String, HeadSnapshot)>,
    baseline: Vec<f64>,
    probe_scores: Vec<Vec<f64>>,
    devices: Vec<FleetDeviceSummary>,
    results: Vec<TuningResult>,
}

/// The fleet orchestrator; see the module docs.
pub struct Fleet {
    cfg: FleetConfig,
    recorder: Box<dyn Recorder>,
}

impl Fleet {
    /// Creates a fleet over `cfg`.
    ///
    /// # Panics
    /// Panics if the roster or the workload suite is empty, or if
    /// `momentum` is outside `[0, 1]`.
    pub fn new(cfg: FleetConfig) -> Fleet {
        assert!(!cfg.roster.is_empty(), "fleet roster must not be empty");
        assert!(!cfg.workloads.is_empty(), "fleet workload suite must not be empty");
        assert!(
            (0.0..=1.0).contains(&cfg.momentum),
            "momentum must be in [0,1]"
        );
        Fleet { cfg, recorder: Box::new(NoopRecorder) }
    }

    /// Installs a [`Recorder`] for `fleet.*` records. The same trace is
    /// forked into each stage's supervisor and campaign, so one trace
    /// covers the whole roster.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The manifest path inside the state directory.
    pub fn manifest_path(&self) -> PathBuf {
        self.cfg.state_dir.join("fleet.json")
    }

    /// The supervisor checkpoint path for stage `stage`.
    pub fn stage_checkpoint_path(&self, stage: usize) -> PathBuf {
        self.cfg.state_dir.join(format!("stage-{stage}.ckpt.json"))
    }

    /// Runs the roster to completion (or to a park point), resuming from
    /// an existing manifest when one is on disk.
    pub fn run(&mut self) -> io::Result<FleetRun> {
        std::fs::create_dir_all(&self.cfg.state_dir)?;
        let mut state = self.load_or_init_state()?;
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("fleet.start")
                    .u64("roster", self.cfg.roster.len() as u64)
                    .u64("workloads", self.cfg.workloads.len() as u64)
                    .u64("stages_done", state.stages_done as u64),
            );
        }
        while state.stages_done < self.cfg.roster.len() {
            if self
                .cfg
                .halt_after_stages
                .is_some_and(|h| state.stages_done >= h)
            {
                return self.park(state.stages_done);
            }
            let stage = state.stages_done;
            let parked = self.run_stage(&mut state, stage)?;
            if parked {
                return self.park(state.stages_done);
            }
        }
        let result = self.finish(&state);
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("fleet.done")
                    .u64("stages", state.stages_done as u64)
                    .u64("transfer_pairs", result.report.transfer.len() as u64),
            );
        }
        Ok(FleetRun {
            status: FleetStatus::Completed,
            stages_done: state.stages_done,
            result: Some(result),
        })
    }

    /// Loads the manifest when present (resume), otherwise pre-trains the
    /// Siamese and scores the baseline (fresh start).
    fn load_or_init_state(&mut self) -> io::Result<FleetManifest> {
        let path = self.manifest_path();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            // Version gate before the full parse: a future layout must be
            // reported as a version mismatch, not as a field error.
            let content = serde_json::parse_content(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let version = content
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "version"))
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0);
            if version != u64::from(FLEET_MANIFEST_VERSION) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "fleet manifest version {version} != supported {FLEET_MANIFEST_VERSION}"
                    ),
                ));
            }
            let manifest: FleetManifest = serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if self.recorder.enabled() {
                self.recorder.emit(
                    Record::new("fleet.resume")
                        .u64("stages_done", manifest.stages_done as u64),
                );
            }
            return Ok(manifest);
        }
        self.recorder.span_begin("fleet.pretrain");
        let samples = pretrain_samples(
            &self.cfg.roster[0],
            &self.cfg.workloads,
            self.cfg.pretrain_per_workload,
            self.cfg.seed,
        );
        let siamese =
            pretrain_pacm(&samples, self.cfg.pretrain_epochs, self.cfg.tuner.seed);
        self.recorder.span_end("fleet.pretrain");
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("fleet.pretrain")
                    .u64("samples", samples.len() as u64)
                    .u64("epochs", self.cfg.pretrain_epochs as u64),
            );
        }
        let heads: Vec<(String, HeadSnapshot)> = Vec::new();
        let baseline: Vec<f64> = (0..self.cfg.roster.len())
            .map(|j| self.probe_score(&siamese, &heads, j))
            .collect();
        Ok(FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            stages_done: 0,
            siamese,
            heads,
            baseline,
            probe_scores: Vec::new(),
            devices: Vec::new(),
            results: Vec::new(),
        })
    }

    /// Runs one roster stage under supervision: restore the device's head
    /// (revisit), tune, carry the Siamese forward, snapshot the head,
    /// re-score the whole roster, persist the manifest. Returns `true`
    /// when the stage parked instead of completing.
    fn run_stage(&mut self, state: &mut FleetManifest, stage: usize) -> io::Result<bool> {
        let spec = self.cfg.roster[stage].clone();
        let fp = spec.fingerprint();
        let mut pretrained = state.siamese.clone();
        if let Some((_, head)) = state.heads.iter().find(|(k, _)| *k == fp) {
            pretrained.restore_head(head);
        }
        let ckpt_path = self.stage_checkpoint_path(stage);
        let mut sup_cfg = self.cfg.supervisor.clone();
        sup_cfg.checkpoint = Some(ckpt_path.clone());
        sup_cfg.seed = self.cfg.tuner.seed ^ (stage as u64);
        let mut supervisor = Supervisor::new(sup_cfg);
        if let Some(rec) = self.recorder.fork() {
            supervisor.set_recorder(rec);
        }
        let cfg = self.cfg.tuner;
        let momentum = self.cfg.momentum;
        let workloads = self.cfg.workloads.clone();
        let store_path = self.cfg.store.clone();
        let recorder = &mut self.recorder;
        let run = supervisor.run(move |ckpt| {
            let mut tuner: Tuner<Simulator> = match ckpt {
                Some(ckpt) => Tuner::from_checkpoint_backend(ckpt)?,
                None if ckpt_path.exists() => Tuner::resume_backend(&ckpt_path)?,
                None => {
                    let mut t = Tuner::new(
                        spec.clone(),
                        cfg,
                        ModelSetup::Mtl { pretrained: pretrained.clone(), momentum },
                    );
                    for (wl, weight) in &workloads {
                        t.add_task(wl.clone(), *weight);
                    }
                    t
                }
            };
            tuner.set_checkpoint_path(&ckpt_path);
            if let Some(path) = &store_path {
                let store = Store::open(path)
                    .map_err(|e| io::Error::new(e.kind(), format!("fleet store: {e}")))?;
                tuner.set_store(store, true);
            }
            if let Some(rec) = recorder.fork() {
                tuner.set_recorder(rec);
            }
            Ok(tuner)
        });
        match run.outcome {
            CampaignOutcome::Completed => {}
            CampaignOutcome::WallDeadlineExceeded
            | CampaignOutcome::SimDeadlineExceeded
            | CampaignOutcome::Cancelled => return Ok(true),
            CampaignOutcome::Quarantined => {
                return Err(io::Error::other(format!(
                    "fleet stage {stage} quarantined after {} faults",
                    run.faults.len()
                )));
            }
        }
        let result = run.result.expect("completed stage has a result");
        let mtl = run.mtl.expect("fleet stages run with ModelSetup::Mtl");
        state.siamese = mtl.siamese().clone();
        let head = state.siamese.head_snapshot();
        match state.heads.iter_mut().find(|(k, _)| *k == fp) {
            Some(slot) => slot.1 = head,
            None => state.heads.push((fp.clone(), head)),
        }
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("fleet.stage")
                    .u64("stage", stage as u64)
                    .str("device", spec_name(&self.cfg.roster[stage]))
                    .str("fingerprint", fp.clone())
                    .f64("best_latency_s", result.best_latency_s)
                    .u64("trials", result.stats.trials),
            );
        }
        let row: Vec<f64> = (0..self.cfg.roster.len())
            .map(|j| self.probe_score(&state.siamese, &state.heads, j))
            .collect();
        if self.recorder.enabled() {
            for (j, score) in row.iter().enumerate() {
                self.recorder.emit(
                    Record::new("fleet.eval")
                        .u64("stage", stage as u64)
                        .str("device", spec_name(&self.cfg.roster[j]))
                        .f64("score", *score),
                );
            }
        }
        state.probe_scores.push(row);
        state.devices.push(FleetDeviceSummary {
            name: spec_name(&self.cfg.roster[stage]),
            fingerprint: fp,
            stage,
            best_latency_s: result.best_latency_s,
            trials: result.stats.trials,
        });
        state.results.push(result);
        state.stages_done = stage + 1;
        self.write_manifest(state)?;
        Ok(false)
    }

    /// Scores roster device `j`'s probe set under `siamese` with device
    /// `j`'s head restored when one exists: Spearman between model scores
    /// and negated simulator latencies (higher = better ranking).
    fn probe_score(
        &self,
        siamese: &PacmModel,
        heads: &[(String, HeadSnapshot)],
        j: usize,
    ) -> f64 {
        let spec = &self.cfg.roster[j];
        let fp = spec.fingerprint();
        let mut model = siamese.clone();
        if let Some((_, head)) = heads.iter().find(|(k, _)| *k == fp) {
            model.restore_head(head);
        }
        let probes = probe_samples(
            spec,
            &self.cfg.workloads,
            self.cfg.probes_per_workload,
            self.cfg.seed,
        );
        let scores: Vec<f64> =
            model.predict(&probes).into_iter().map(f64::from).collect();
        let neg_latency: Vec<f64> = probes.iter().map(|s| -s.latency).collect();
        pruner_cost::metrics::spearman(&scores, &neg_latency)
    }

    /// Parks the fleet: the manifest already on disk is the resume point.
    fn park(&mut self, stages_done: usize) -> io::Result<FleetRun> {
        if self.recorder.enabled() {
            self.recorder
                .emit(Record::new("fleet.park").u64("stages_done", stages_done as u64));
        }
        Ok(FleetRun { status: FleetStatus::Parked, stages_done, result: None })
    }

    /// Builds the final [`FleetResult`] from a fully-run state.
    fn finish(&self, state: &FleetManifest) -> FleetResult {
        let n = self.cfg.roster.len();
        let names: Vec<String> = self.cfg.roster.iter().map(spec_name).collect();
        let mut transfer = Vec::new();
        for (i, row) in state.probe_scores.iter().enumerate() {
            for (j, score) in row.iter().enumerate() {
                transfer.push(TransferPair {
                    stage: i,
                    trained_on: names[i].clone(),
                    evaluated: names[j].clone(),
                    score: *score,
                    delta_vs_baseline: score - state.baseline[j],
                });
            }
        }
        let last = state.probe_scores.len() - 1;
        let forgetting: Vec<ForgettingDelta> = (0..n)
            .map(|j| {
                // The last stage that trained on device j (a roster may
                // revisit a device; forgetting is measured from the most
                // recent visit).
                let trained_stage = (0..n)
                    .rev()
                    .find(|&i| {
                        self.cfg.roster[i].fingerprint()
                            == self.cfg.roster[j].fingerprint()
                    })
                    .expect("device j is its own visit");
                let after = state.probe_scores[trained_stage][j];
                let final_score = state.probe_scores[last][j];
                ForgettingDelta {
                    device: names[j].clone(),
                    trained_stage,
                    score_after_training: after,
                    final_score,
                    delta: final_score - after,
                }
            })
            .collect();
        FleetResult {
            devices: state.devices.clone(),
            results: state.results.clone(),
            report: FleetTransferReport {
                baseline: state.baseline.clone(),
                probe_scores: state.probe_scores.clone(),
                transfer,
                forgetting,
            },
        }
    }

    /// Writes the manifest atomically and durably.
    fn write_manifest(&self, state: &FleetManifest) -> io::Result<()> {
        let json = serde_json::to_string(state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_atomic_durable(&self.manifest_path(), &json, None)
    }
}

/// Display name of a roster device (its spec `name` field).
fn spec_name(spec: &GpuSpec) -> String {
    spec.name.clone()
}

/// The seeded pre-training set: `per_workload` sampled programs per
/// workload on `spec`, labeled with noiseless simulator latencies.
/// Single-threaded and fully determined by `(spec, workloads, seed)`.
pub fn pretrain_samples(
    spec: &GpuSpec,
    workloads: &[(Workload, u64)],
    per_workload: usize,
    seed: u64,
) -> Vec<Sample> {
    let sim = Simulator::new(spec.clone());
    let limits = spec.limits();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ PRETRAIN_SEED_SALT);
    let mut samples = Vec::with_capacity(workloads.len() * per_workload);
    for (ti, (wl, _)) in workloads.iter().enumerate() {
        for _ in 0..per_workload {
            let p = Program::sample(wl, &limits, &mut rng);
            let lat = sim.latency(&p);
            samples.push(Sample::labeled(&p, lat, ti));
        }
    }
    samples
}

/// The seeded probe set for one device: `per_workload` sampled programs
/// per workload, labeled with noiseless simulator latencies. The stream
/// is keyed by the device fingerprint, so each device gets its own fixed
/// probes — regenerated on demand, never stored.
pub fn probe_samples(
    spec: &GpuSpec,
    workloads: &[(Workload, u64)],
    per_workload: usize,
    seed: u64,
) -> Vec<Sample> {
    let sim = Simulator::new(spec.clone());
    let limits = spec.limits();
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    (seed ^ PROBE_SEED_SALT).hash(&mut hasher);
    spec.fingerprint().hash(&mut hasher);
    let mut rng = ChaCha8Rng::seed_from_u64(hasher.finish());
    let mut samples = Vec::with_capacity(workloads.len() * per_workload);
    for (ti, (wl, _)) in workloads.iter().enumerate() {
        for _ in 0..per_workload {
            let p = Program::sample(wl, &limits, &mut rng);
            let lat = sim.latency(&p);
            samples.push(Sample::labeled(&p, lat, ti));
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fresh scratch directory under the system temp dir (the repo has no
    /// tempdir dev-dependency; unique names keep parallel tests apart).
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pruner-fleet-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_fleet(dir: &std::path::Path, roster: Vec<GpuSpec>) -> FleetConfig {
        let mut cfg = FleetConfig::quick(roster, dir.to_path_buf());
        cfg.tuner = TunerConfig {
            rounds: 2,
            measure_per_round: 2,
            space_size: 16,
            target_pool: 16,
            train_epochs: 1,
            mtl_epochs: 1,
            threads: 1,
            ..TunerConfig::quick()
        };
        cfg.pretrain_per_workload = 8;
        cfg.pretrain_epochs = 1;
        cfg.probes_per_workload = 8;
        cfg
    }

    #[test]
    fn fleet_runs_roster_and_reports_transfer() {
        let dir = scratch("roster");
        let cfg = quick_fleet(&dir, vec![GpuSpec::k80(), GpuSpec::t4()]);
        let run = Fleet::new(cfg).run().unwrap();
        assert_eq!(run.status, FleetStatus::Completed);
        let result = run.result.unwrap();
        assert_eq!(result.devices.len(), 2);
        assert_eq!(result.report.baseline.len(), 2);
        assert_eq!(result.report.probe_scores.len(), 2);
        assert_eq!(result.report.transfer.len(), 4);
        assert_eq!(result.report.forgetting.len(), 2);
        for f in &result.report.forgetting {
            assert!(
                (f.delta - (f.final_score - f.score_after_training)).abs() < 1e-12,
                "forgetting delta must be final − after-training"
            );
        }
        for t in &result.report.transfer {
            assert!(t.score.is_finite() && t.score.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fleet_halt_and_resume_is_byte_identical() {
        let full_dir = scratch("full");
        let cfg = quick_fleet(&full_dir, vec![GpuSpec::k80(), GpuSpec::t4()]);
        let full = Fleet::new(cfg.clone()).run().unwrap().result.unwrap();

        let halt_dir = scratch("halted");
        let mut halted = quick_fleet(&halt_dir, vec![GpuSpec::k80(), GpuSpec::t4()]);
        halted.halt_after_stages = Some(1);
        let parked = Fleet::new(halted.clone()).run().unwrap();
        assert_eq!(parked.status, FleetStatus::Parked);
        assert_eq!(parked.stages_done, 1);
        halted.halt_after_stages = None;
        let resumed = Fleet::new(halted).run().unwrap().result.unwrap();
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "kill+resume must be byte-identical"
        );
    }

    #[test]
    fn probe_samples_are_device_keyed_and_stable() {
        let wls = vec![(Workload::matmul(1, 128, 128, 128), 1)];
        let a1 = probe_samples(&GpuSpec::k80(), &wls, 4, 7);
        let a2 = probe_samples(&GpuSpec::k80(), &wls, 4, 7);
        let b = probe_samples(&GpuSpec::t4(), &wls, 4, 7);
        assert_eq!(
            a1.iter().map(|s| s.latency).collect::<Vec<_>>(),
            a2.iter().map(|s| s.latency).collect::<Vec<_>>(),
            "same device + seed → same probes"
        );
        assert_ne!(
            a1.iter().map(|s| s.latency).collect::<Vec<_>>(),
            b.iter().map(|s| s.latency).collect::<Vec<_>>(),
            "different devices draw different probe streams"
        );
    }

    #[test]
    fn manifest_version_mismatch_is_rejected() {
        let dir = scratch("version");
        let cfg = quick_fleet(&dir, vec![GpuSpec::k80()]);
        let fleet = Fleet::new(cfg.clone());
        std::fs::write(
            fleet.manifest_path(),
            r#"{"version":999,"stages_done":0,"siamese":{},"heads":[],"baseline":[],"probe_scores":[],"devices":[],"results":[]}"#,
        )
        .unwrap();
        let err = Fleet::new(cfg).run().unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
    }
}
