//! The tensor-program tuning loop: search, measurement and model updates.
//!
//! This crate wires the Pruner stack into the round-based campaign the
//! paper evaluates (§2.1, §3.3): each round the [`Tuner`] picks the most
//! promising task, the task proposes a sample space — from the PSA-pruned
//! target space plus an ε share of the original space, or by pure
//! evolution for the Ansor baseline — the cost model ranks it, the top
//! candidates are measured on the simulated device, and the model is
//! updated (optionally through a Momentum Transfer Learning round,
//! [`Mtl`]).
//!
//! [`Measurer`] accounts simulated search time (compile + run + model +
//! PSA + training) so the "Search Time (s)" axes of Figures 8–10 and the
//! compile-time comparison of Table 3 can be regenerated without real
//! hardware; [`TuningCurve`] records the best-so-far trajectory and
//! implements the time-to-parity query those figures report.
//!
//! # Example
//!
//! ```no_run
//! use pruner_gpu::GpuSpec;
//! use pruner_ir::Workload;
//! use pruner_cost::ModelKind;
//! use pruner_tuner::{ModelSetup, Tuner, TunerConfig};
//!
//! let mut tuner = Tuner::new(
//!     GpuSpec::t4(),
//!     TunerConfig::default(),
//!     ModelSetup::Fresh(ModelKind::Pacm),
//! );
//! tuner.add_task(Workload::matmul(1, 512, 512, 512), 1);
//! let result = tuner.run();
//! println!("best: {:.3} ms", result.best_latency_s * 1e3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod curve;
pub mod fleet;
mod measure;
mod mtl;
mod state;
mod supervisor;
mod task;
mod tuner;

pub use checkpoint::{Checkpoint, MeasurerCheckpoint, TaskCheckpoint};
pub use curve::{CurvePoint, TuningCurve};
pub use fleet::{
    Fleet, FleetConfig, FleetDeviceSummary, FleetResult, FleetRun, FleetStatus,
    FleetTransferReport, ForgettingDelta, TransferPair, FLEET_MANIFEST_VERSION,
};
pub use measure::{
    MeasureOutcome, Measurer, PipelineStage, RetryPolicy, SearchStats, TimeModel, WallTimings,
};
pub use mtl::{pretrain_pacm, Mtl};
pub use state::{CampaignPhase, CampaignStatus};
pub use supervisor::{
    CampaignFactory, CampaignFault, CampaignOutcome, SupervisedRun, Supervisor,
    SupervisorConfig, STOP_KILL, STOP_NONE, STOP_PARK,
};
pub use task::{FunnelCounts, ProposeParams, TaskTuner};
pub use tuner::{ModelSetup, Tuner, TunerConfig, TuningResult};
