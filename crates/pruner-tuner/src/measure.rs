//! Measurement with caching, fault handling, and search-time accounting.

use pruner_gpu::{Backend, FaultKind, Simulator};
use pruner_sketch::Program;
use pruner_trace::{NoopRecorder, Record, Recorder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Wall-clock cost constants of one tuning campaign.
///
/// The paper's "Search Time (s)" axes measure real hours on real machines;
/// our substrate executes instantly, so the tuner *accounts* time the way
/// the real system would spend it: compiling and running each measured
/// candidate on the device, evaluating candidates with the cost model (or
/// PSA), and fine-tuning the model. The default constants are calibrated
/// against the paper's Table 3 (Ansor ≈ 2000 trials in ~2 hours on TITAN V,
/// i.e. ~3.7 s/trial dominated by compile + measure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// Seconds to compile one candidate kernel.
    pub compile_s: f64,
    /// Fixed per-measurement harness overhead, seconds.
    pub measure_overhead_s: f64,
    /// Repeats averaged per measurement.
    pub repeats: u32,
    /// Seconds per cost-model candidate evaluation (features + inference).
    pub model_eval_s: f64,
    /// Seconds per PSA candidate evaluation (formula only).
    pub psa_eval_s: f64,
    /// Seconds per (sample × epoch) of cost-model fine-tuning.
    pub train_sample_s: f64,
    /// Seconds per evolutionary-search candidate generated (mutation,
    /// legality checks, feature extraction for scoring).
    pub evolve_s: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            compile_s: 1.9,
            measure_overhead_s: 0.35,
            repeats: 100,
            model_eval_s: 4.0e-4,
            psa_eval_s: 2.0e-5,
            train_sample_s: 6.0e-4,
            evolve_s: 1.5e-4,
        }
    }
}

/// How the measurement harness reacts to injected hardware failures.
///
/// Mirrors the retry discipline of a real RPC measurement fleet: a failed
/// attempt is retried a bounded number of times with exponential backoff
/// (charged to simulated time, not host time), device resets charge an
/// extra recovery penalty, and timings whose relative standard deviation
/// exceeds `outlier_rel_std` are treated as failed attempts too.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Extra attempts allowed after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff charged before the first retry, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_mult: f64,
    /// Deadline charged when an attempt times out, seconds.
    pub timeout_s: f64,
    /// Recovery penalty charged when the device resets, seconds.
    pub reset_penalty_s: f64,
    /// Relative standard deviation (σ / mean) above which a timing is
    /// rejected as an outlier and the attempt retried.
    pub outlier_rel_std: f64,
    /// Relative jitter on each charged backoff: a value `j > 0` scales
    /// the exponential backoff by a factor drawn uniformly from
    /// `[1 - j, 1 + j]`, so simultaneous retries across a fleet don't
    /// synchronize into thundering herds. `0.0` (the default) charges
    /// the exact exponential schedule — the historical ledger.
    #[serde(default)]
    pub backoff_jitter: f64,
    /// Seed of the jitter stream. Each draw is a pure function of
    /// `(jitter_seed, attempt nonce)`, so the jittered ledger is as
    /// deterministic and resume-stable as the unjittered one.
    #[serde(default)]
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base_s: 0.5,
            backoff_mult: 2.0,
            timeout_s: 10.0,
            reset_penalty_s: 30.0,
            outlier_rel_std: 0.5,
            backoff_jitter: 0.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The simulated backoff charged before retry `attempt` (1-based):
    /// the exponential base `backoff_base_s * backoff_mult^(attempt-1)`,
    /// scaled by the seeded jitter factor for `nonce` (the attempt nonce
    /// about to be consumed) when `backoff_jitter > 0`.
    pub fn backoff_s(&self, attempt: u32, nonce: u64) -> f64 {
        debug_assert!(attempt >= 1, "backoff is only charged before retries");
        let base = self.backoff_base_s * self.backoff_mult.powi(attempt as i32 - 1);
        if self.backoff_jitter <= 0.0 {
            return base;
        }
        // Same idiom as the measurement fault stream: hash the identity
        // of the draw, seed a private ChaCha8, take one uniform.
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.jitter_seed.hash(&mut hasher);
        nonce.hash(&mut hasher);
        let mut rng = ChaCha8Rng::seed_from_u64(hasher.finish());
        let u: f64 = rng.gen();
        base * (1.0 + self.backoff_jitter * (2.0 * u - 1.0))
    }
}

/// The final verdict on measuring one program, after retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeasureOutcome {
    /// A trusted timing.
    Success {
        /// Mean latency over the configured repeats, seconds.
        latency_s: f64,
        /// Population variance of the per-repeat latencies, seconds².
        variance: f64,
    },
    /// Every attempt failed; the program is quarantined.
    Failure {
        /// The failure class of the last attempt.
        kind: FaultKind,
        /// Total attempts spent before giving up.
        attempts: u32,
    },
}

/// A [`MeasureOutcome`] converts losslessly into the persistent store's
/// [`pruner_store::RecordOutcome`] (and back): the store redeclares the
/// enum so log readers never have to link the search loop.
impl From<MeasureOutcome> for pruner_store::RecordOutcome {
    fn from(out: MeasureOutcome) -> pruner_store::RecordOutcome {
        match out {
            MeasureOutcome::Success { latency_s, variance } => {
                pruner_store::RecordOutcome::Success { latency_s, variance }
            }
            MeasureOutcome::Failure { kind, attempts } => {
                pruner_store::RecordOutcome::Failure { kind, attempts }
            }
        }
    }
}

impl From<pruner_store::RecordOutcome> for MeasureOutcome {
    fn from(out: pruner_store::RecordOutcome) -> MeasureOutcome {
        match out {
            pruner_store::RecordOutcome::Success { latency_s, variance } => {
                MeasureOutcome::Success { latency_s, variance }
            }
            pruner_store::RecordOutcome::Failure { kind, attempts } => {
                MeasureOutcome::Failure { kind, attempts }
            }
        }
    }
}

impl MeasureOutcome {
    /// The latency if the measurement succeeded.
    pub fn latency(&self) -> Option<f64> {
        match self {
            MeasureOutcome::Success { latency_s, .. } => Some(*latency_s),
            MeasureOutcome::Failure { .. } => None,
        }
    }

    /// Whether this outcome carries a trusted timing.
    pub fn is_success(&self) -> bool {
        matches!(self, MeasureOutcome::Success { .. })
    }
}

/// A stage of the candidate pipeline whose host wall-clock time is
/// tracked. Each variant corresponds to one trace span and one field of
/// [`WallTimings`], so there is exactly one timing source per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Candidate generation (GA init / next-generation fan-out).
    Generate,
    /// PSA drafting (penalized-estimate fan-out).
    Psa,
    /// Cost-model inference (featurize + predict fan-out).
    Predict,
}

/// Host wall-clock seconds spent in the parallel pipeline stages.
///
/// These are *host* timings: they vary run to run and machine to machine,
/// so they are excluded from [`SearchStats`] equality and serialization.
/// They are fed exclusively from trace-span measurements
/// ([`pruner_trace::Recorder::span_end`] returns the elapsed seconds), so
/// when tracing is disabled the campaign performs no clock reads at all
/// and every field here stays 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WallTimings {
    /// Seconds in candidate generation (GA fan-out).
    pub generate_s: f64,
    /// Seconds in PSA drafting (estimate fan-out).
    pub psa_s: f64,
    /// Seconds in cost-model inference (predict fan-out).
    pub predict_s: f64,
}

impl WallTimings {
    /// Total host wall-clock seconds across all tracked stages.
    pub fn total_s(&self) -> f64 {
        self.generate_s + self.psa_s + self.predict_s
    }
}

/// Simulated-time ledger of one tuning campaign.
///
/// The `*_time_s` fields are *simulated* costs charged through
/// [`TimeModel`] and are fully deterministic. The `wall` field is *host*
/// wall-clock time actually spent in the parallel pipeline stages
/// (candidate generation, PSA drafting, cost-model inference); it varies
/// run to run and is therefore excluded from both equality comparison and
/// serialization.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Programs measured on the (simulated) device.
    pub trials: u64,
    /// Seconds spent compiling + running measurements.
    pub measure_time_s: f64,
    /// Seconds spent in cost-model inference.
    pub model_time_s: f64,
    /// Seconds spent in PSA estimates.
    pub psa_time_s: f64,
    /// Seconds spent fine-tuning cost models.
    pub train_time_s: f64,
    /// Seconds spent generating/evolving candidates.
    pub evolve_time_s: f64,
    /// Measurement attempts that failed (all classes, including rejected
    /// outlier timings).
    #[serde(default)]
    pub failures: u64,
    /// Failed attempts that were retried.
    #[serde(default)]
    pub retries: u64,
    /// Attempts lost to compile errors.
    #[serde(default)]
    pub compile_errors: u64,
    /// Attempts lost to run timeouts.
    #[serde(default)]
    pub timeouts: u64,
    /// Attempts lost to device resets.
    #[serde(default)]
    pub device_resets: u64,
    /// Timings rejected as outliers (excessive dispersion).
    #[serde(default)]
    pub outliers: u64,
    /// Programs quarantined after exhausting retries.
    #[serde(default)]
    pub quarantined: u64,
    /// Seconds of simulated exponential backoff before retries.
    #[serde(default)]
    pub retry_backoff_s: f64,
    /// Seconds of simulated device time wasted on failed attempts
    /// (compile time of broken kernels, timeout deadlines, reset
    /// recovery, discarded outlier runs).
    #[serde(default)]
    pub fault_time_s: f64,
    /// Host wall-clock seconds per pipeline stage, fed from trace spans.
    #[serde(skip)]
    pub wall: WallTimings,
}

impl PartialEq for SearchStats {
    /// Compares only the deterministic simulated ledger; host wall-clock
    /// timings differ between otherwise identical runs.
    fn eq(&self, other: &Self) -> bool {
        self.trials == other.trials
            && self.measure_time_s == other.measure_time_s
            && self.model_time_s == other.model_time_s
            && self.psa_time_s == other.psa_time_s
            && self.train_time_s == other.train_time_s
            && self.evolve_time_s == other.evolve_time_s
            && self.failures == other.failures
            && self.retries == other.retries
            && self.compile_errors == other.compile_errors
            && self.timeouts == other.timeouts
            && self.device_resets == other.device_resets
            && self.outliers == other.outliers
            && self.quarantined == other.quarantined
            && self.retry_backoff_s == other.retry_backoff_s
            && self.fault_time_s == other.fault_time_s
    }
}

impl SearchStats {
    /// Total simulated search time, including time lost to faults.
    pub fn total_s(&self) -> f64 {
        self.measure_time_s
            + self.model_time_s
            + self.psa_time_s
            + self.train_time_s
            + self.evolve_time_s
            + self.retry_backoff_s
            + self.fault_time_s
    }

    /// Total host wall-clock time spent in the parallel pipeline stages.
    pub fn pipeline_wall_s(&self) -> f64 {
        self.wall.total_s()
    }
}

/// Measures programs on a [`Backend`] (the analytical simulator by
/// default), deduplicating repeats, retrying injected failures per
/// [`RetryPolicy`], and accounting simulated search time.
#[derive(Debug, Clone)]
pub struct Measurer<B: Backend = Simulator> {
    backend: B,
    time: TimeModel,
    policy: RetryPolicy,
    cache: HashMap<String, MeasureOutcome>,
    stats: SearchStats,
    /// Measurement attempts issued so far; the nonce of the next attempt.
    /// With no faults every attempt succeeds, so this tracks
    /// `stats.trials` exactly and the zero-fault noise stream is
    /// bit-identical to a fault-unaware harness.
    attempts: u64,
}

impl Measurer<Simulator> {
    /// The underlying simulator (simulator-backed measurers only).
    pub fn simulator(&self) -> &Simulator {
        &self.backend
    }

    /// Mutable access to the simulator (e.g. to install a fault model).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.backend
    }
}

impl<B: Backend> Measurer<B> {
    /// Wraps a measurement backend with the default time model.
    pub fn new(backend: B) -> Measurer<B> {
        Measurer::with_time_model(backend, TimeModel::default())
    }

    /// Wraps a measurement backend with an explicit time model.
    pub fn with_time_model(backend: B, time: TimeModel) -> Measurer<B> {
        Measurer {
            backend,
            time,
            policy: RetryPolicy::default(),
            cache: HashMap::new(),
            stats: SearchStats::default(),
            attempts: 0,
        }
    }

    /// Rebuilds a measurer from checkpointed state.
    pub(crate) fn from_parts(
        backend: B,
        time: TimeModel,
        policy: RetryPolicy,
        cache: Vec<(String, MeasureOutcome)>,
        stats: SearchStats,
        attempts: u64,
    ) -> Measurer<B> {
        Measurer { backend, time, policy, cache: cache.into_iter().collect(), stats, attempts }
    }

    /// The measurement backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the measurement backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The time-cost constants in use.
    pub fn time_model(&self) -> &TimeModel {
        &self.time
    }

    /// Replaces the time-cost constants **without** touching the
    /// measurement cache, ledger, or attempt counter — swapping cost
    /// constants mid-campaign must not forget what was already measured.
    pub fn set_time_model(&mut self, time: TimeModel) {
        self.time = time;
    }

    /// The retry policy in use.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Replaces the retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The accumulated ledger.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Measurement attempts issued so far (the next attempt's nonce).
    pub(crate) fn attempts(&self) -> u64 {
        self.attempts
    }

    /// The measurement cache in deterministic (sorted-key) order, for
    /// checkpointing.
    pub(crate) fn cache_entries(&self) -> Vec<(String, MeasureOutcome)> {
        let mut entries: Vec<(String, MeasureOutcome)> =
            self.cache.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Measures one program (averaged over the configured repeats),
    /// charging compile + run time, retrying injected failures up to the
    /// policy bound. Previously measured programs return the cached
    /// outcome and charge nothing — real tuners skip re-measuring too,
    /// and a quarantined kernel is never put back on the device.
    pub fn measure(&mut self, prog: &Program) -> MeasureOutcome {
        self.measure_rec(prog, &mut NoopRecorder)
    }

    /// [`Measurer::measure`] with an explicit [`Recorder`]: identical
    /// outcome, ledger and nonce stream, plus per-attempt `fault` records,
    /// a `quarantine` record when the program exhausts its retries, and a
    /// `measure.cache_hits` counter. With a [`NoopRecorder`] this *is*
    /// `measure` — the recorder never influences the measurement.
    pub fn measure_rec(&mut self, prog: &Program, rec: &mut dyn Recorder) -> MeasureOutcome {
        let key = prog.dedup_key();
        if let Some(&out) = self.cache.get(&key) {
            rec.counter("measure.cache_hits", 1);
            return out;
        }
        let mut last_kind = FaultKind::CompileError;
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                // `self.attempts` is the nonce the upcoming attempt will
                // consume — a stable identity for the jitter draw.
                self.stats.retry_backoff_s += self.policy.backoff_s(attempt, self.attempts);
            }
            let nonce = self.attempts;
            self.attempts += 1;
            match self.backend.try_measure(prog, nonce, self.time.repeats) {
                Err(kind) => {
                    let charged = self.record_fault(kind, 0.0);
                    if rec.enabled() {
                        rec.emit(
                            Record::new("fault")
                                .str("fault_kind", kind.label())
                                .u64("attempt", u64::from(attempt) + 1)
                                .f64("charged_s", charged),
                        );
                    }
                    last_kind = kind;
                }
                Ok(m) if m.rel_std() > self.policy.outlier_rel_std => {
                    // The run "completed", so the device time was spent
                    // before the timing was rejected.
                    let charged =
                        self.record_fault(FaultKind::Outlier, m.mean_s * self.time.repeats as f64);
                    if rec.enabled() {
                        rec.emit(
                            Record::new("fault")
                                .str("fault_kind", FaultKind::Outlier.label())
                                .u64("attempt", u64::from(attempt) + 1)
                                .f64("charged_s", charged),
                        );
                    }
                    last_kind = FaultKind::Outlier;
                }
                Ok(m) => {
                    self.stats.trials += 1;
                    self.stats.measure_time_s += self.time.compile_s
                        + self.time.measure_overhead_s
                        + m.mean_s * self.time.repeats as f64;
                    let out =
                        MeasureOutcome::Success { latency_s: m.mean_s, variance: m.variance };
                    self.cache.insert(key, out);
                    return out;
                }
            }
        }
        self.stats.quarantined += 1;
        if rec.enabled() {
            rec.emit(
                Record::new("quarantine")
                    .str("fault_kind", last_kind.label())
                    .u64("attempts", u64::from(self.policy.max_retries) + 1),
            );
        }
        let out =
            MeasureOutcome::Failure { kind: last_kind, attempts: self.policy.max_retries + 1 };
        self.cache.insert(key, out);
        out
    }

    /// Measures one program bypassing the fault model (a hand-verified
    /// reference run, as a real campaign does for its seed schedules).
    /// Consumes the same nonce stream as [`Measurer::measure`] so the
    /// zero-fault path is unchanged, and always produces a trusted timing.
    pub fn measure_trusted(&mut self, prog: &Program) -> f64 {
        let key = prog.dedup_key();
        if let Some(&out) = self.cache.get(&key) {
            if let Some(lat) = out.latency() {
                return lat;
            }
        }
        let nonce = self.attempts;
        self.attempts += 1;
        let m = self.backend.measure_dist(prog, nonce, self.time.repeats);
        self.stats.trials += 1;
        self.stats.measure_time_s +=
            self.time.compile_s + self.time.measure_overhead_s + m.mean_s * self.time.repeats as f64;
        let out = MeasureOutcome::Success { latency_s: m.mean_s, variance: m.variance };
        self.cache.insert(key, out);
        m.mean_s
    }

    /// Accounts one failed attempt and returns the simulated device
    /// seconds it was charged (also added to `fault_time_s`).
    fn record_fault(&mut self, kind: FaultKind, run_s: f64) -> f64 {
        self.stats.failures += 1;
        let charged = match kind {
            FaultKind::CompileError => {
                self.stats.compile_errors += 1;
                self.time.compile_s
            }
            FaultKind::Timeout => {
                self.stats.timeouts += 1;
                self.time.compile_s + self.time.measure_overhead_s + self.policy.timeout_s
            }
            FaultKind::DeviceReset => {
                self.stats.device_resets += 1;
                self.time.compile_s + self.time.measure_overhead_s + self.policy.reset_penalty_s
            }
            FaultKind::Outlier => {
                self.stats.outliers += 1;
                self.time.compile_s + self.time.measure_overhead_s + run_s
            }
        };
        self.stats.fault_time_s += charged;
        charged
    }

    /// Whether a program has already been measured (or quarantined).
    pub fn is_measured(&self, prog: &Program) -> bool {
        self.cache.contains_key(&prog.dedup_key())
    }

    /// The cached verdict for a program, if it has one — measured this
    /// run, restored from a checkpoint, or pre-seeded from a record store.
    pub fn cached_outcome(&self, prog: &Program) -> Option<MeasureOutcome> {
        self.cache.get(&prog.dedup_key()).copied()
    }

    /// Seeds the cache with an outcome paid for by an *earlier* campaign
    /// (store warm start): no simulated time is charged, no attempt nonce
    /// is consumed, and the trial counter is untouched — replayed
    /// knowledge is free, which is the whole point of persisting it.
    /// Returns `false` (a no-op) if the program already has a verdict;
    /// a live measurement never gets overwritten by a stored one.
    pub fn preseed(&mut self, key: String, outcome: MeasureOutcome) -> bool {
        if self.cache.contains_key(&key) {
            return false;
        }
        self.cache.insert(key, outcome);
        true
    }

    /// Charges cost-model inference time for `n` candidates.
    pub fn charge_model_evals(&mut self, n: usize) {
        self.stats.model_time_s += n as f64 * self.time.model_eval_s;
    }

    /// Charges PSA estimation time for `n` candidates.
    pub fn charge_psa_evals(&mut self, n: usize) {
        self.stats.psa_time_s += n as f64 * self.time.psa_eval_s;
    }

    /// Charges fine-tuning time for `samples × epochs` training work.
    pub fn charge_training(&mut self, samples: usize, epochs: usize) {
        self.stats.train_time_s += (samples * epochs) as f64 * self.time.train_sample_s;
    }

    /// Charges candidate-generation time for `n` evolved candidates.
    pub fn charge_evolution(&mut self, n: usize) {
        self.stats.evolve_time_s += n as f64 * self.time.evolve_s;
    }

    /// Records host wall-clock time spent in one pipeline stage. Callers
    /// pass the elapsed seconds returned by
    /// [`pruner_trace::Recorder::span_end`] so the stats ledger and the
    /// trace share one clock read; with tracing disabled `span_end`
    /// returns 0.0 and the wall ledger stays empty.
    pub fn record_wall(&mut self, stage: PipelineStage, seconds: f64) {
        match stage {
            PipelineStage::Generate => self.stats.wall.generate_s += seconds,
            PipelineStage::Psa => self.stats.wall.psa_s += seconds,
            PipelineStage::Predict => self.stats.wall.predict_s += seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruner_gpu::{FaultModel, GpuSpec};
    use pruner_ir::Workload;
    use pruner_sketch::{HardwareLimits, Program};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn measurer() -> Measurer {
        Measurer::new(Simulator::new(GpuSpec::t4()))
    }

    fn faulty_measurer(rate: f64) -> Measurer {
        let mut sim = Simulator::new(GpuSpec::t4());
        sim.set_fault_model(Some(FaultModel::from_rate(11, rate)));
        Measurer::new(sim)
    }

    fn prog(seed: u64) -> Program {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Program::sample(&Workload::matmul(1, 256, 256, 256), &HardwareLimits::default(), &mut rng)
    }

    #[test]
    fn measurement_is_cached() {
        let mut m = measurer();
        let p = prog(1);
        let a = m.measure(&p);
        let t1 = m.stats().measure_time_s;
        let b = m.measure(&p);
        assert_eq!(a, b);
        assert!(a.is_success());
        assert_eq!(m.stats().trials, 1, "repeat measurement must not count");
        assert_eq!(m.stats().measure_time_s, t1);
        assert!(m.is_measured(&p));
    }

    #[test]
    fn zero_fault_path_matches_legacy_nonce_stream() {
        // Without faults the attempt nonce must equal the trial count at
        // every cache miss, so measure() reproduces the historical
        // measure_avg(prog, trials, repeats) stream bit for bit.
        let mut m = measurer();
        let sim = Simulator::new(GpuSpec::t4());
        for s in 0..8 {
            let p = prog(s);
            let expect = sim.measure_avg(&p, m.stats().trials, m.time_model().repeats);
            let got = m.measure(&p).latency().expect("fault-free");
            assert_eq!(got, expect, "nonce stream diverged at trial {s}");
        }
        assert_eq!(m.stats().failures, 0);
        assert_eq!(m.stats().fault_time_s, 0.0);
    }

    #[test]
    fn measure_trusted_is_identical_to_measure_without_faults() {
        let mut a = measurer();
        let mut b = measurer();
        for s in 0..6 {
            let p = prog(s);
            let la = a.measure(&p).latency().unwrap();
            let lb = b.measure_trusted(&p);
            assert_eq!(la, lb);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn retries_and_quarantine_account_faults() {
        // At a near-certain fault rate every program exhausts its retries.
        let mut m = faulty_measurer(0.9);
        m.set_retry_policy(RetryPolicy { max_retries: 2, ..RetryPolicy::default() });
        let mut quarantined = 0;
        for s in 0..24 {
            if let MeasureOutcome::Failure { attempts, .. } = m.measure(&prog(s)) {
                assert_eq!(attempts, 3);
                quarantined += 1;
            }
        }
        let st = m.stats();
        assert!(quarantined > 0, "rate 0.9 must quarantine something in 24 programs");
        assert_eq!(st.quarantined, quarantined);
        assert!(st.failures >= 3 * quarantined, "each quarantine burns all attempts");
        assert_eq!(st.failures, st.retries + st.quarantined, "one extra failure per quarantine");
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let mut m = faulty_measurer(0.9);
        m.set_retry_policy(RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_mult: 2.0,
            ..RetryPolicy::default()
        });
        // Find a program that exhausts all 4 attempts.
        for s in 0..64 {
            let before = m.stats().retry_backoff_s;
            if let MeasureOutcome::Failure { .. } = m.measure(&prog(s)) {
                let spent = m.stats().retry_backoff_s - before;
                // 1 + 2 + 4 seconds of backoff across 3 retries.
                assert_eq!(spent, 7.0);
                return;
            }
        }
        panic!("rate 0.9 never exhausted retries in 64 programs");
    }

    #[test]
    fn quarantined_outcome_is_cached_and_charges_nothing_again() {
        let mut m = faulty_measurer(0.9);
        for s in 0..64 {
            let p = prog(s);
            let first = m.measure(&p);
            if !first.is_success() {
                let stats = m.stats();
                let again = m.measure(&p);
                assert_eq!(first, again);
                assert_eq!(m.stats(), stats, "cached failure must not re-charge");
                return;
            }
        }
        panic!("rate 0.9 never quarantined in 64 programs");
    }

    #[test]
    fn fault_classes_are_counted_and_charged() {
        let mut m = faulty_measurer(0.5);
        for s in 0..200 {
            m.measure(&prog(s));
        }
        let st = m.stats();
        assert!(st.failures > 0);
        assert_eq!(
            st.failures,
            st.compile_errors + st.timeouts + st.device_resets + st.outliers,
            "class counters must partition failures"
        );
        assert!(st.fault_time_s > 0.0);
        assert!(st.retry_backoff_s > 0.0);
        assert!(st.total_s() > st.measure_time_s + st.fault_time_s);
    }

    #[test]
    fn time_accounting_accumulates() {
        let mut m = measurer();
        m.measure(&prog(2));
        m.charge_model_evals(512);
        m.charge_psa_evals(2048);
        m.charge_training(100, 10);
        m.charge_evolution(512);
        let s = m.stats();
        assert!(s.measure_time_s > 2.0, "compile dominates: {}", s.measure_time_s);
        assert!(s.model_time_s > 0.0 && s.psa_time_s > 0.0);
        assert!(s.total_s() > s.measure_time_s);
    }

    #[test]
    fn set_time_model_preserves_cache_and_stats() {
        let mut m = measurer();
        let p = prog(5);
        m.measure(&p);
        let stats = m.stats();
        let time = TimeModel { compile_s: 10.0, ..TimeModel::default() };
        m.set_time_model(time);
        assert!(m.is_measured(&p), "swapping cost constants must not drop the cache");
        assert_eq!(m.stats(), stats, "swapping cost constants must not reset the ledger");
        assert_eq!(m.time_model().compile_s, 10.0);
    }

    #[test]
    fn wall_clock_is_excluded_from_equality() {
        let mut a = measurer();
        let mut b = measurer();
        a.measure(&prog(3));
        b.measure(&prog(3));
        a.record_wall(PipelineStage::Generate, 0.25);
        a.record_wall(PipelineStage::Psa, 0.5);
        a.record_wall(PipelineStage::Predict, 1.0);
        assert_eq!(a.stats(), b.stats(), "wall clock must not break determinism checks");
        assert_eq!(a.stats().wall, WallTimings { generate_s: 0.25, psa_s: 0.5, predict_s: 1.0 });
        assert_eq!(a.stats().pipeline_wall_s(), 1.75);
        assert_eq!(b.stats().pipeline_wall_s(), 0.0);
    }

    #[test]
    fn zero_max_retries_fails_fast_with_no_backoff() {
        let mut m = faulty_measurer(0.9);
        m.set_retry_policy(RetryPolicy { max_retries: 0, ..RetryPolicy::default() });
        for s in 0..64 {
            let attempts_before = m.attempts();
            if let MeasureOutcome::Failure { attempts, .. } = m.measure(&prog(s)) {
                assert_eq!(attempts, 1, "max_retries = 0 means a single attempt");
                assert_eq!(m.attempts() - attempts_before, 1, "no hidden extra attempts");
                let st = m.stats();
                assert_eq!(st.retries, 0, "fail-fast must never retry");
                assert_eq!(st.retry_backoff_s, 0.0, "no retries means no backoff charge");
                assert_eq!(st.quarantined, st.failures, "every failure quarantines directly");
                return;
            }
        }
        panic!("rate 0.9 never failed in 64 programs");
    }

    #[test]
    fn no_backoff_is_charged_after_the_final_failed_attempt() {
        // Backoff is charged *before* each retry, so a program that burns
        // max_retries = 2 (three attempts) is charged base·mult⁰ + base·mult¹
        // and nothing more: giving up is free. A fencepost bug that charges
        // backoff after the last attempt would add base·mult² here.
        let mut m = faulty_measurer(0.95);
        m.set_retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base_s: 1.0,
            backoff_mult: 3.0,
            ..RetryPolicy::default()
        });
        for s in 0..64 {
            let before = m.stats().retry_backoff_s;
            if let MeasureOutcome::Failure { attempts, .. } = m.measure(&prog(s)) {
                assert_eq!(attempts, 3);
                let spent = m.stats().retry_backoff_s - before;
                assert_eq!(spent, 1.0 + 3.0, "expected base·(1 + mult), got {spent}");
                return;
            }
        }
        panic!("rate 0.95 never exhausted retries in 64 programs");
    }

    /// Runs `m` until a program exhausts its retries and returns the
    /// backoff charged for it.
    fn first_exhausted_backoff<B: Backend>(m: &mut Measurer<B>) -> f64 {
        for s in 0..64 {
            let before = m.stats().retry_backoff_s;
            if let MeasureOutcome::Failure { .. } = m.measure(&prog(s)) {
                return m.stats().retry_backoff_s - before;
            }
        }
        panic!("fault rate never exhausted retries in 64 programs");
    }

    #[test]
    fn backoff_jitter_is_bounded_deterministic_and_seed_sensitive() {
        let policy = |jitter_seed: u64| RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_mult: 2.0,
            backoff_jitter: 0.25,
            jitter_seed,
            ..RetryPolicy::default()
        };
        let mut a = faulty_measurer(0.9);
        a.set_retry_policy(policy(7));
        let spent_a = first_exhausted_backoff(&mut a);
        // Bounds: 3 retries of base 1+2+4, each within ±25%.
        assert!(spent_a > 7.0 * 0.75 && spent_a < 7.0 * 1.25, "jitter out of bounds: {spent_a}");
        assert_ne!(spent_a, 7.0, "jitter 0.25 must perturb the exact schedule");

        let mut b = faulty_measurer(0.9);
        b.set_retry_policy(policy(7));
        assert_eq!(spent_a, first_exhausted_backoff(&mut b), "same seed, same ledger — bit-for-bit");

        let mut c = faulty_measurer(0.9);
        c.set_retry_policy(policy(8));
        assert_ne!(
            spent_a,
            first_exhausted_backoff(&mut c),
            "a different jitter seed must de-synchronize the retries"
        );
    }

    #[test]
    fn backoff_jitter_draw_is_pinned_to_the_documented_formula() {
        let policy = RetryPolicy {
            backoff_base_s: 1.0,
            backoff_mult: 2.0,
            backoff_jitter: 0.25,
            jitter_seed: 42,
            ..RetryPolicy::default()
        };
        // The charge for retry `attempt` at nonce `n` is exactly
        // base·mult^(attempt-1) · (1 + j·(2u-1)) with u drawn from a
        // ChaCha8 seeded by hashing (jitter_seed, nonce).
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        42u64.hash(&mut hasher);
        9u64.hash(&mut hasher);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(hasher.finish());
        let u: f64 = rng.gen();
        let expected = 2.0 * (1.0 + 0.25 * (2.0 * u - 1.0));
        assert_eq!(policy.backoff_s(2, 9), expected);
        // And jitter 0 is the exact historical schedule.
        let exact = RetryPolicy { backoff_jitter: 0.0, ..policy };
        assert_eq!(exact.backoff_s(2, 9), 1.0 * 2.0);
        assert_eq!(exact.backoff_s(1, 123), 1.0);
    }

    #[test]
    fn outlier_rejection_boundary_is_strictly_greater() {
        // Measure once fault-free to learn the deterministic dispersion of
        // the first attempt (nonce 0), then replay it against thresholds
        // pinned exactly at and just below that value.
        let mut probe = measurer();
        let (latency, variance) = match probe.measure(&prog(0)) {
            MeasureOutcome::Success { latency_s, variance } => (latency_s, variance),
            MeasureOutcome::Failure { .. } => panic!("fault-free measurement failed"),
        };
        let rel_std = variance.sqrt() / latency;
        assert!(rel_std > 0.0, "need nonzero dispersion to exercise the boundary");

        // Threshold exactly equal to the observed rel_std: `>` is strict,
        // so the timing is accepted.
        let mut at = measurer();
        at.set_retry_policy(RetryPolicy { outlier_rel_std: rel_std, ..RetryPolicy::default() });
        let out = at.measure(&prog(0));
        assert!(out.is_success(), "rel_std equal to the threshold must pass");
        assert_eq!(out.latency(), Some(latency));
        assert_eq!(at.stats().outliers, 0);

        // Threshold just below: the same timing is now rejected on the
        // first attempt (retries re-measure under fresh nonces, so only
        // attempt 1 is pinned to the probe's dispersion).
        let mut below = measurer();
        below.set_retry_policy(RetryPolicy {
            max_retries: 0,
            outlier_rel_std: rel_std * (1.0 - 1e-12),
            ..RetryPolicy::default()
        });
        let out = below.measure(&prog(0));
        assert!(!out.is_success(), "rel_std above the threshold must be rejected");
        assert_eq!(
            out,
            MeasureOutcome::Failure { kind: FaultKind::Outlier, attempts: 1 }
        );
        let st = below.stats();
        assert_eq!(st.outliers, 1);
        assert!(
            st.fault_time_s >= latency * below.time_model().repeats as f64,
            "a rejected outlier still pays for the device time it burned"
        );
    }

    #[test]
    fn measure_rec_emits_faults_and_quarantine_without_changing_outcomes() {
        use pruner_trace::TraceHandle;
        let mut plain = faulty_measurer(0.9);
        let mut traced = faulty_measurer(0.9);
        let mut trace = TraceHandle::new();
        for s in 0..24 {
            let p = prog(s);
            let a = plain.measure(&p);
            let b = traced.measure_rec(&p, &mut trace);
            assert_eq!(a, b, "recorder must not influence outcomes");
        }
        assert_eq!(plain.stats(), traced.stats());
        let st = traced.stats();
        let records = trace.records();
        let faults = records.iter().filter(|r| r.kind() == "fault").count() as u64;
        let quarantines = records.iter().filter(|r| r.kind() == "quarantine").count() as u64;
        assert_eq!(faults, st.failures, "one fault record per failed attempt");
        assert_eq!(quarantines, st.quarantined, "one quarantine record per give-up");
        let charged: f64 = records
            .iter()
            .filter(|r| r.kind() == "fault")
            .map(|r| r.get("charged_s").and_then(pruner_trace::Value::as_f64).unwrap())
            .sum();
        assert_eq!(charged, st.fault_time_s, "fault records must reconcile with the ledger");
    }

    #[test]
    fn measure_rec_counts_cache_hits() {
        use pruner_trace::TraceHandle;
        let mut m = measurer();
        let mut trace = TraceHandle::new();
        let p = prog(1);
        m.measure_rec(&p, &mut trace);
        m.measure_rec(&p, &mut trace);
        m.measure_rec(&p, &mut trace);
        let jsonl = trace.to_jsonl();
        assert!(
            jsonl.contains("\"name\":\"measure.cache_hits\",\"value\":2"),
            "expected 2 cache hits in: {jsonl}"
        );
    }

    #[test]
    fn preseeded_outcome_is_free_and_never_overwrites() {
        let mut m = measurer();
        let p = prog(7);
        let seeded = MeasureOutcome::Success { latency_s: 4.2e-3, variance: 0.0 };
        assert!(m.preseed(p.dedup_key(), seeded));
        // The seeded verdict is served from cache: no trial, no nonce, no
        // simulated time.
        assert_eq!(m.measure(&p), seeded);
        assert_eq!(m.stats().trials, 0);
        assert_eq!(m.attempts(), 0);
        assert_eq!(m.stats().measure_time_s, 0.0);
        // A live verdict wins over a later seed attempt.
        let live = m.measure(&prog(8));
        assert!(!m.preseed(prog(8).dedup_key(), seeded));
        assert_eq!(m.cached_outcome(&prog(8)), Some(live));
    }

    #[test]
    fn psa_eval_cheaper_than_model_eval() {
        let t = TimeModel::default();
        assert!(t.psa_eval_s * 10.0 < t.model_eval_s);
    }

    #[test]
    fn trial_cost_matches_table3_scale() {
        // ~2000 trials should land in the paper's hours-scale ballpark.
        let mut m = measurer();
        let mut total_progs = 0;
        for s in 0..50 {
            m.measure(&prog(s));
            total_progs += 1;
        }
        let per_trial = m.stats().measure_time_s / total_progs as f64;
        assert!((1.0..10.0).contains(&per_trial), "per-trial {per_trial}s out of band");
    }
}
