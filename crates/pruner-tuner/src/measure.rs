//! Measurement with caching and search-time accounting.

use pruner_gpu::Simulator;
use pruner_sketch::Program;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Wall-clock cost constants of one tuning campaign.
///
/// The paper's "Search Time (s)" axes measure real hours on real machines;
/// our substrate executes instantly, so the tuner *accounts* time the way
/// the real system would spend it: compiling and running each measured
/// candidate on the device, evaluating candidates with the cost model (or
/// PSA), and fine-tuning the model. The default constants are calibrated
/// against the paper's Table 3 (Ansor ≈ 2000 trials in ~2 hours on TITAN V,
/// i.e. ~3.7 s/trial dominated by compile + measure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// Seconds to compile one candidate kernel.
    pub compile_s: f64,
    /// Fixed per-measurement harness overhead, seconds.
    pub measure_overhead_s: f64,
    /// Repeats averaged per measurement.
    pub repeats: u32,
    /// Seconds per cost-model candidate evaluation (features + inference).
    pub model_eval_s: f64,
    /// Seconds per PSA candidate evaluation (formula only).
    pub psa_eval_s: f64,
    /// Seconds per (sample × epoch) of cost-model fine-tuning.
    pub train_sample_s: f64,
    /// Seconds per evolutionary-search candidate generated (mutation,
    /// legality checks, feature extraction for scoring).
    pub evolve_s: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            compile_s: 1.9,
            measure_overhead_s: 0.35,
            repeats: 100,
            model_eval_s: 4.0e-4,
            psa_eval_s: 2.0e-5,
            train_sample_s: 6.0e-4,
            evolve_s: 1.5e-4,
        }
    }
}

/// Simulated-time ledger of one tuning campaign.
///
/// The `*_time_s` fields are *simulated* costs charged through
/// [`TimeModel`] and are fully deterministic. The `*_wall_s` fields are
/// *host* wall-clock time actually spent in the parallel pipeline stages
/// (candidate generation, PSA drafting, cost-model inference); they vary
/// run to run and are therefore excluded from both equality comparison and
/// serialization.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Programs measured on the (simulated) device.
    pub trials: u64,
    /// Seconds spent compiling + running measurements.
    pub measure_time_s: f64,
    /// Seconds spent in cost-model inference.
    pub model_time_s: f64,
    /// Seconds spent in PSA estimates.
    pub psa_time_s: f64,
    /// Seconds spent fine-tuning cost models.
    pub train_time_s: f64,
    /// Seconds spent generating/evolving candidates.
    pub evolve_time_s: f64,
    /// Host wall-clock seconds in candidate generation (GA fan-out).
    #[serde(skip)]
    pub gen_wall_s: f64,
    /// Host wall-clock seconds in PSA drafting (estimate fan-out).
    #[serde(skip)]
    pub psa_wall_s: f64,
    /// Host wall-clock seconds in cost-model inference (predict fan-out).
    #[serde(skip)]
    pub predict_wall_s: f64,
}

impl PartialEq for SearchStats {
    /// Compares only the deterministic simulated ledger; host wall-clock
    /// timings differ between otherwise identical runs.
    fn eq(&self, other: &Self) -> bool {
        self.trials == other.trials
            && self.measure_time_s == other.measure_time_s
            && self.model_time_s == other.model_time_s
            && self.psa_time_s == other.psa_time_s
            && self.train_time_s == other.train_time_s
            && self.evolve_time_s == other.evolve_time_s
    }
}

impl SearchStats {
    /// Total simulated search time.
    pub fn total_s(&self) -> f64 {
        self.measure_time_s
            + self.model_time_s
            + self.psa_time_s
            + self.train_time_s
            + self.evolve_time_s
    }

    /// Total host wall-clock time spent in the parallel pipeline stages.
    pub fn pipeline_wall_s(&self) -> f64 {
        self.gen_wall_s + self.psa_wall_s + self.predict_wall_s
    }
}

/// Measures programs on the simulator, deduplicating repeats and accounting
/// simulated search time.
#[derive(Debug, Clone)]
pub struct Measurer {
    sim: Simulator,
    time: TimeModel,
    cache: HashMap<String, f64>,
    stats: SearchStats,
}

impl Measurer {
    /// Wraps a simulator with the default time model.
    pub fn new(sim: Simulator) -> Measurer {
        Measurer { sim, time: TimeModel::default(), cache: HashMap::new(), stats: SearchStats::default() }
    }

    /// Wraps a simulator with an explicit time model.
    pub fn with_time_model(sim: Simulator, time: TimeModel) -> Measurer {
        Measurer { sim, time, cache: HashMap::new(), stats: SearchStats::default() }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The time-cost constants in use.
    pub fn time_model(&self) -> &TimeModel {
        &self.time
    }

    /// The accumulated ledger.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Measures one program (averaged over the configured repeats), charging
    /// compile + run time. Previously measured programs return the cached
    /// value and charge nothing — real tuners skip re-measuring too.
    pub fn measure(&mut self, prog: &Program) -> f64 {
        let key = prog.dedup_key();
        if let Some(&lat) = self.cache.get(&key) {
            return lat;
        }
        let lat = self.sim.measure_avg(prog, self.stats.trials, self.time.repeats);
        self.stats.trials += 1;
        self.stats.measure_time_s += self.time.compile_s
            + self.time.measure_overhead_s
            + lat * self.time.repeats as f64;
        self.cache.insert(key, lat);
        lat
    }

    /// Whether a program has already been measured.
    pub fn is_measured(&self, prog: &Program) -> bool {
        self.cache.contains_key(&prog.dedup_key())
    }

    /// Charges cost-model inference time for `n` candidates.
    pub fn charge_model_evals(&mut self, n: usize) {
        self.stats.model_time_s += n as f64 * self.time.model_eval_s;
    }

    /// Charges PSA estimation time for `n` candidates.
    pub fn charge_psa_evals(&mut self, n: usize) {
        self.stats.psa_time_s += n as f64 * self.time.psa_eval_s;
    }

    /// Charges fine-tuning time for `samples × epochs` training work.
    pub fn charge_training(&mut self, samples: usize, epochs: usize) {
        self.stats.train_time_s += (samples * epochs) as f64 * self.time.train_sample_s;
    }

    /// Charges candidate-generation time for `n` evolved candidates.
    pub fn charge_evolution(&mut self, n: usize) {
        self.stats.evolve_time_s += n as f64 * self.time.evolve_s;
    }

    /// Records host wall-clock time spent generating candidates.
    pub fn record_gen_wall(&mut self, seconds: f64) {
        self.stats.gen_wall_s += seconds;
    }

    /// Records host wall-clock time spent in PSA drafting.
    pub fn record_psa_wall(&mut self, seconds: f64) {
        self.stats.psa_wall_s += seconds;
    }

    /// Records host wall-clock time spent in cost-model inference.
    pub fn record_predict_wall(&mut self, seconds: f64) {
        self.stats.predict_wall_s += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruner_gpu::GpuSpec;
    use pruner_ir::Workload;
    use pruner_sketch::{HardwareLimits, Program};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn measurer() -> Measurer {
        Measurer::new(Simulator::new(GpuSpec::t4()))
    }

    fn prog(seed: u64) -> Program {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Program::sample(&Workload::matmul(1, 256, 256, 256), &HardwareLimits::default(), &mut rng)
    }

    #[test]
    fn measurement_is_cached() {
        let mut m = measurer();
        let p = prog(1);
        let a = m.measure(&p);
        let t1 = m.stats().measure_time_s;
        let b = m.measure(&p);
        assert_eq!(a, b);
        assert_eq!(m.stats().trials, 1, "repeat measurement must not count");
        assert_eq!(m.stats().measure_time_s, t1);
        assert!(m.is_measured(&p));
    }

    #[test]
    fn time_accounting_accumulates() {
        let mut m = measurer();
        m.measure(&prog(2));
        m.charge_model_evals(512);
        m.charge_psa_evals(2048);
        m.charge_training(100, 10);
        m.charge_evolution(512);
        let s = m.stats();
        assert!(s.measure_time_s > 2.0, "compile dominates: {}", s.measure_time_s);
        assert!(s.model_time_s > 0.0 && s.psa_time_s > 0.0);
        assert!(s.total_s() > s.measure_time_s);
    }

    #[test]
    fn wall_clock_is_excluded_from_equality() {
        let mut a = measurer();
        let mut b = measurer();
        a.measure(&prog(3));
        b.measure(&prog(3));
        a.record_gen_wall(0.25);
        a.record_psa_wall(0.5);
        a.record_predict_wall(1.0);
        assert_eq!(a.stats(), b.stats(), "wall clock must not break determinism checks");
        assert!(a.stats().pipeline_wall_s() > 0.0);
        assert_eq!(b.stats().pipeline_wall_s(), 0.0);
    }

    #[test]
    fn psa_eval_cheaper_than_model_eval() {
        let t = TimeModel::default();
        assert!(t.psa_eval_s * 10.0 < t.model_eval_s);
    }

    #[test]
    fn trial_cost_matches_table3_scale() {
        // ~2000 trials should land in the paper's hours-scale ballpark.
        let mut m = measurer();
        let mut total_progs = 0;
        for s in 0..50 {
            m.measure(&prog(s));
            total_progs += 1;
        }
        let per_trial = m.stats().measure_time_s / total_progs as f64;
        assert!((1.0..10.0).contains(&per_trial), "per-trial {per_trial}s out of band");
    }
}
