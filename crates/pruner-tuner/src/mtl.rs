//! Momentum Transfer Learning (paper §2.5, Figure 5).
//!
//! MTL is how a verifier trained on one platform becomes useful on
//! another without forgetting what it knows. The pre-trained PaCM acts as
//! a **Siamese** network: each online round clones it into a *target*,
//! fine-tunes the target on the measurements collected so far on the new
//! platform, and folds the target's progress back into the Siamese
//! weights with the momentum rule `P_s ← m·P_s + (1−m)·P_t` (`m = 0.99`).
//! The target — fresh off the Siamese weights every round, fully adapted
//! to the round's data — serves as the round's predictor; the Siamese
//! copy drifts slowly, so a few noisy measurements can never wipe out the
//! pre-trained knowledge.
//!
//! ## The transfer path, end to end
//!
//! 1. **Pre-train** a PaCM offline on a source platform's labeled
//!    programs ([`pretrain_pacm`], or a store replay through
//!    [`CostModel::pretrain`]).
//! 2. **Configure** a campaign with
//!    [`ModelSetup::Mtl`](crate::ModelSetup::Mtl) — the tuner builds an
//!    [`Mtl`] around the pre-trained weights and runs [`Mtl::round`]
//!    once per tuning round instead of plain fitting.
//! 3. **Carry** the evolved Siamese onward: [`Mtl::siamese`] exposes it,
//!    campaign checkpoints embed it (so resume is byte-identical), and
//!    the cross-hardware fleet (`crate::fleet`) chains it across an
//!    ordered roster of devices — snapshotting each device's scoring
//!    head by fingerprint ([`pruner_cost::HeadSnapshot`]) so the shared
//!    trunk keeps learning while per-device calibration is preserved.
//!
//! Determinism: every step is seeded and banded bit-exactly, so MTL
//! campaigns are byte-identical at any thread count and across
//! kill+resume — the same contract the rest of the tuner honors.

use pruner_cost::{CostModel, PacmModel, Sample};
use pruner_nn::Module;
use serde::{Deserialize, Serialize};

/// The MTL state: a pre-trained Siamese copy of PaCM plus the momentum
/// coefficient (`m = 0.99` in the paper).
///
/// Every online round clones the Siamese model into a fresh *target*,
/// fine-tunes the target on the measurements collected so far, and folds
/// the target's progress back into the Siamese weights with
/// `P_s ← m·P_s + (1−m)·P_t` — the bidirectional feedback that keeps
/// fine-tuning from collapsing while still letting the pre-trained
/// knowledge drift toward the new platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mtl {
    siamese: PacmModel,
    momentum: f32,
    rounds: usize,
}

impl Mtl {
    /// Wraps a (typically cross-platform pre-trained) PaCM as the Siamese
    /// network.
    ///
    /// # Panics
    /// Panics if `momentum` is outside `[0, 1]`.
    pub fn new(pretrained: PacmModel, momentum: f32) -> Mtl {
        assert!((0.0..=1.0).contains(&momentum), "momentum must be in [0,1]");
        Mtl { siamese: pretrained, momentum, rounds: 0 }
    }

    /// The paper's default momentum.
    pub fn with_paper_momentum(pretrained: PacmModel) -> Mtl {
        Mtl::new(pretrained, 0.99)
    }

    /// Momentum coefficient in use.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Completed MTL rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Read access to the Siamese model.
    pub fn siamese(&self) -> &PacmModel {
        &self.siamese
    }

    /// One MTL round: clone → fine-tune on `samples` → momentum-fold back.
    ///
    /// `threads` bands the target's training GEMMs across workers (the
    /// result is bit-identical at any thread count). Returns the
    /// fine-tuned target model, which serves as the round's predictor.
    pub fn round(&mut self, samples: &[Sample], epochs: usize, threads: usize) -> PacmModel {
        self.round_traced(samples, epochs, threads, &mut pruner_trace::NoopRecorder)
    }

    /// [`Mtl::round`] with observability: the round runs inside an
    /// `mtl.round` span and the target's fine-tuning goes through
    /// [`CostModel::fit_batch_traced`] (so the training loss is gauged as
    /// `model.fit_loss`). The returned target and the updated Siamese
    /// weights are bit-identical to the untraced call.
    pub fn round_traced(
        &mut self,
        samples: &[Sample],
        epochs: usize,
        threads: usize,
        rec: &mut dyn pruner_trace::Recorder,
    ) -> PacmModel {
        rec.span_begin("mtl.round");
        let mut target = self.siamese.clone();
        target.fit_batch_traced(samples, epochs, threads, rec);
        self.siamese.momentum_update_from(&mut target, self.momentum);
        self.rounds += 1;
        rec.span_end("mtl.round");
        target
    }
}

/// Pre-trains a fresh PaCM on an offline dataset — the stand-in for the
/// paper's "pre-trained on the NVIDIA K80-6M dataset of TensetGPUs".
pub fn pretrain_pacm(samples: &[Sample], epochs: usize, seed: u64) -> PacmModel {
    let mut model = PacmModel::new(seed);
    model.fit(samples, epochs);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruner_gpu::{GpuSpec, Simulator};
    use pruner_ir::Workload;
    use pruner_sketch::Program;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn samples_on(spec: GpuSpec, n: usize, seed: u64) -> Vec<Sample> {
        let sim = Simulator::new(spec.clone());
        let limits = spec.limits();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let wl = Workload::matmul(1, 512, 512, 512);
        (0..n)
            .map(|_| {
                let p = Program::sample(&wl, &limits, &mut rng);
                let lat = sim.latency(&p);
                Sample::labeled(&p, lat, 0)
            })
            .collect()
    }

    #[test]
    fn round_returns_trained_target_and_moves_siamese() {
        let pre = pretrain_pacm(&samples_on(GpuSpec::k80(), 24, 1), 5, 7);
        let mut mtl = Mtl::with_paper_momentum(pre.clone());
        let before = format!("{:?}", mtl.siamese().clone().predict(&samples_on(GpuSpec::t4(), 4, 9)));
        let _target = mtl.round(&samples_on(GpuSpec::t4(), 24, 2), 5, 1);
        assert_eq!(mtl.rounds(), 1);
        let after = format!("{:?}", mtl.siamese().clone().predict(&samples_on(GpuSpec::t4(), 4, 9)));
        assert_ne!(before, after, "siamese weights must drift");
    }

    #[test]
    fn momentum_one_freezes_siamese() {
        let pre = pretrain_pacm(&samples_on(GpuSpec::k80(), 16, 3), 3, 7);
        let mut mtl = Mtl::new(pre.clone(), 1.0);
        mtl.round(&samples_on(GpuSpec::t4(), 16, 4), 5, 2);
        let probe = samples_on(GpuSpec::t4(), 4, 10);
        assert_eq!(
            mtl.siamese().clone().predict(&probe),
            pre.clone().predict(&probe),
            "momentum 1.0 must leave the siamese untouched"
        );
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_momentum_rejected() {
        Mtl::new(PacmModel::new(1), 1.5);
    }
}
