//! The campaign state machine.
//!
//! A tuning campaign used to be an opaque `for` loop inside
//! [`Tuner::run`](crate::Tuner::run); this module names every point the
//! loop can stand at as a serializable [`CampaignPhase`], so a campaign
//! becomes a *value*: something a checkpoint can capture mid-round, a
//! supervisor can park and resume, and a scheduler can migrate between
//! worker pools. [`Tuner::step`](crate::Tuner::step) advances exactly one
//! phase transition and returns a [`CampaignStatus`]; `run` is now just
//! `start` + `step` until done.
//!
//! The phases mirror the paper's draft-then-verify round structure:
//!
//! ```text
//! Init ──► Proposing ──► Measuring ──► Training ──► CheckpointDue ─┐
//!            ▲  │ (out of rounds)        (one program per step)    │
//!            │  └───────► Done ◄───────────(halt_after reached)────┤
//!            └─────────────────────────────────────────────────────┘
//!                                  Failed (checkpoint/store write error)
//! ```
//!
//! Determinism contract: stepping through the phases produces *exactly*
//! the trace records, RNG draws, and simulated-time charges of the
//! original loop, so goldens pinned before the refactor still hold, and
//! a campaign parked in any phase and resumed from its checkpoint is
//! byte-identical to one that never stopped.

use pruner_sketch::Program;
use serde::{Deserialize, Serialize};

use crate::task::FunnelCounts;

/// Where a campaign stands, precisely enough to resume mid-round.
///
/// Every field is plain data (no handles, no closures): the phase is
/// embedded verbatim in the [`Checkpoint`](crate::Checkpoint), which is
/// what makes mid-round park/resume possible at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignPhase {
    /// Nothing has run yet: store replay and the warmup sweep (fallback
    /// measurement per task) are still pending.
    Init,
    /// About to propose candidates for `round` (or to finish, if `round`
    /// is past the configured horizon).
    Proposing {
        /// The round about to run; rounds `0..round` are complete.
        round: usize,
    },
    /// Mid-measurement: the proposal funnel has run and `pending[next..]`
    /// are still waiting for the measurer. One program is measured per
    /// [`Tuner::step`](crate::Tuner::step), so a kill between any two
    /// measurements is resumable.
    Measuring {
        /// The round being measured.
        round: usize,
        /// Index of the task picked by the scheduler for this round.
        task: usize,
        /// The round's proposed programs, in measurement order.
        pending: Vec<Program>,
        /// Index of the next program in `pending` to measure.
        next: usize,
        /// Successful measurements so far this round.
        measured: u64,
        /// Failed (quarantined) measurements so far this round.
        failed: u64,
        /// Whether any measurement improved the task's incumbent.
        improved: bool,
        /// The proposal funnel counters, carried to the round record.
        funnel: FunnelCounts,
    },
    /// Measurements done; the cost-model (or MTL) update, curve point,
    /// and round record are pending.
    Training {
        /// The round being trained on.
        round: usize,
        /// The task tuned this round.
        task: usize,
        /// Successful measurements this round.
        measured: u64,
        /// Failed measurements this round.
        failed: u64,
        /// The proposal funnel counters for the round record.
        funnel: FunnelCounts,
    },
    /// Round `round - 1` just finished: decide whether to cut a cadence
    /// checkpoint, honor `halt_after`, and hand over to the next round.
    CheckpointDue {
        /// Rounds completed so far (the next round to propose).
        round: usize,
    },
    /// The campaign finished and emitted its end-of-campaign records.
    Done,
    /// The campaign hit a non-recoverable error (checkpoint or store
    /// write failure). [`Tuner::run`](crate::Tuner::run) panics with the
    /// reason; a supervisor turns it into a typed fault and restarts
    /// from the last good checkpoint.
    Failed {
        /// Human-readable description of what went wrong.
        reason: String,
    },
}

impl CampaignPhase {
    /// The round this phase belongs to: the next round to propose for
    /// boundary phases, the in-flight round for mid-round phases.
    pub fn round(&self) -> usize {
        match self {
            CampaignPhase::Init => 0,
            CampaignPhase::Proposing { round }
            | CampaignPhase::Measuring { round, .. }
            | CampaignPhase::Training { round, .. }
            | CampaignPhase::CheckpointDue { round } => *round,
            CampaignPhase::Done | CampaignPhase::Failed { .. } => usize::MAX,
        }
    }

    /// Stable snake_case name for trace records and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignPhase::Init => "init",
            CampaignPhase::Proposing { .. } => "proposing",
            CampaignPhase::Measuring { .. } => "measuring",
            CampaignPhase::Training { .. } => "training",
            CampaignPhase::CheckpointDue { .. } => "checkpoint_due",
            CampaignPhase::Done => "done",
            CampaignPhase::Failed { .. } => "failed",
        }
    }

    /// `true` once the campaign can no longer advance.
    pub fn is_terminal(&self) -> bool {
        matches!(self, CampaignPhase::Done | CampaignPhase::Failed { .. })
    }
}

/// What one [`Tuner::step`](crate::Tuner::step) reports back.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignStatus {
    /// More work remains; call `step` again.
    Running,
    /// The campaign completed; the result is ready.
    Done,
    /// The campaign failed with this reason (mirrors
    /// [`CampaignPhase::Failed`]).
    Failed(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_round_trips_through_json() {
        let phases = vec![
            CampaignPhase::Init,
            CampaignPhase::Proposing { round: 4 },
            CampaignPhase::Training {
                round: 2,
                task: 1,
                measured: 3,
                failed: 1,
                funnel: FunnelCounts::default(),
            },
            CampaignPhase::CheckpointDue { round: 6 },
            CampaignPhase::Done,
            CampaignPhase::Failed { reason: "disk gone".into() },
        ];
        for phase in phases {
            let json = serde_json::to_string(&phase).unwrap();
            let back: CampaignPhase = serde_json::from_str(&json).unwrap();
            assert_eq!(back, phase);
        }
    }

    #[test]
    fn labels_and_rounds_are_stable() {
        assert_eq!(CampaignPhase::Init.label(), "init");
        assert_eq!(CampaignPhase::Init.round(), 0);
        assert_eq!(CampaignPhase::Proposing { round: 7 }.round(), 7);
        assert_eq!(CampaignPhase::CheckpointDue { round: 3 }.label(), "checkpoint_due");
        assert!(CampaignPhase::Done.is_terminal());
        assert!(CampaignPhase::Failed { reason: String::new() }.is_terminal());
        assert!(!CampaignPhase::Proposing { round: 0 }.is_terminal());
    }
}
