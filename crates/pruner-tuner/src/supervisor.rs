//! The crash-safe campaign supervisor: watchdog, deadlines, bounded
//! restarts.
//!
//! [`Supervisor::run`] drives one campaign on a worker thread and watches
//! it from outside: a heartbeat-based watchdog catches *stalled* rounds
//! (a measurement that never returns — the failure class the in-campaign
//! retry loop cannot see), `catch_unwind` catches panics, and
//! [`CampaignStatus::Failed`] surfaces checkpoint/store write errors as
//! typed [`CampaignFault`]s instead of aborts. Every fault triggers a
//! bounded restart: seeded exponential backoff with deterministic jitter,
//! then the campaign is rebuilt from its last on-disk [`Checkpoint`]
//! through the caller's factory. Because a resumed campaign is
//! byte-identical to an uninterrupted one (the repo's core determinism
//! contract), a supervised campaign that faulted and restarted produces
//! *exactly* the result of one that never did.
//!
//! Two deadline kinds bound a campaign:
//!
//! * **wall deadline** — real host seconds across all attempts; on expiry
//!   the supervisor asks the worker to park (checkpoint + store flush)
//!   and returns [`CampaignOutcome::WallDeadlineExceeded`].
//! * **simulated deadline** — the campaign's own simulated-time ledger
//!   ([`Tuner::stats`]); the worker parks itself the moment the ledger
//!   crosses the budget ([`CampaignOutcome::SimDeadlineExceeded`]).
//!
//! After [`SupervisorConfig::max_restarts`] faults the campaign is
//! *quarantined* — the supervisor gives up and reports
//! [`CampaignOutcome::Quarantined`] with the full fault history.
//!
//! Everything the supervisor does is visible in the trace as
//! `supervisor.*` records (start/fault/restart/quarantine/done), which
//! the end-of-campaign [`pruner_trace::Report`] aggregates into its own
//! section.

use crate::checkpoint::Checkpoint;
use crate::mtl::Mtl;
use crate::state::CampaignStatus;
use crate::tuner::{Tuner, TuningResult};
use pruner_gpu::Backend;
use pruner_trace::{NoopRecorder, Record, Recorder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed salt deriving the restart-backoff jitter stream from the
/// supervisor seed.
const RESTART_SEED_SALT: u64 = 0x5AFE_57A7_5AFE_57A7;

/// [`SupervisorConfig::stop`] value: no stop requested; keep running.
pub const STOP_NONE: u8 = 0;
/// [`SupervisorConfig::stop`] value: park the campaign (checkpoint + store
/// flush) at the next step boundary and end the run as
/// [`CampaignOutcome::Cancelled`]. A graceful cancel — the checkpoint can
/// be resumed later.
pub const STOP_PARK: u8 = 1;
/// [`SupervisorConfig::stop`] value: abandon the campaign at the next step
/// boundary *without* parking or flushing anything — the in-process
/// equivalent of `kill -9`. The last cadence checkpoint on disk (if any)
/// is what a later resume sees. Ends the run as
/// [`CampaignOutcome::Cancelled`] with no result.
pub const STOP_KILL: u8 = 2;

/// A boxed campaign builder, the element type of
/// [`Supervisor::run_many`]'s batch: called with `None` for a fresh start
/// and with the loaded [`Checkpoint`] after a fault, exactly like the
/// generic factory of [`Supervisor::run`]. Boxing lets one batch mix
/// closures of different shapes (fresh submissions next to restart-resumed
/// campaigns), which is what a multi-tenant scheduler hands the
/// supervisor.
pub type CampaignFactory<B> =
    Box<dyn FnMut(Option<Checkpoint>) -> std::io::Result<Tuner<B>> + Send>;

/// Supervision policy for one campaign.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Host-seconds budget across all attempts; `None` means unbounded.
    /// On expiry the campaign is parked (checkpointed) and the run
    /// reports [`CampaignOutcome::WallDeadlineExceeded`].
    pub wall_deadline_s: Option<f64>,
    /// Simulated-seconds budget (the campaign's own [`Tuner::stats`]
    /// ledger); `None` means unbounded. The worker parks itself when the
    /// ledger crosses it.
    pub sim_deadline_s: Option<f64>,
    /// Host seconds of heartbeat silence before the watchdog declares the
    /// campaign stalled.
    pub watchdog_timeout_s: f64,
    /// How often the supervisor polls the worker, host seconds. Bounds
    /// watchdog detection latency.
    pub poll_interval_s: f64,
    /// Restarts allowed before the campaign is quarantined.
    pub max_restarts: u32,
    /// First restart backoff, host seconds.
    pub backoff_base_s: f64,
    /// Backoff multiplier per successive restart.
    pub backoff_mult: f64,
    /// Relative jitter on each backoff (±fraction), drawn from a stream
    /// seeded by [`SupervisorConfig::seed`] — deterministic per seed.
    pub backoff_jitter: f64,
    /// Seed of the backoff-jitter stream.
    pub seed: u64,
    /// Checkpoint file the campaign writes and restarts resume from.
    /// Without one, restarts rebuild from scratch and deadline parks skip
    /// persistence (the in-memory result snapshot is still returned).
    pub checkpoint: Option<PathBuf>,
    /// External stop request, polled at every worker step boundary and
    /// every supervisor poll tick: [`STOP_NONE`] runs normally,
    /// [`STOP_PARK`] cancels gracefully (park, then
    /// [`CampaignOutcome::Cancelled`]), [`STOP_KILL`] abandons without
    /// persisting anything. A daemon shares one signal across a batch to
    /// stop every campaign, or gives each campaign its own for per-tenant
    /// cancellation. A set signal also suppresses restarts: a fault while
    /// stopping ends the run as cancelled instead of backing off.
    pub stop: Option<Arc<AtomicU8>>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            wall_deadline_s: None,
            sim_deadline_s: None,
            watchdog_timeout_s: 30.0,
            poll_interval_s: 0.05,
            max_restarts: 3,
            backoff_base_s: 0.1,
            backoff_mult: 2.0,
            backoff_jitter: 0.1,
            seed: 0,
            checkpoint: None,
            stop: None,
        }
    }
}

/// One detected campaign failure, typed by failure domain.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignFault {
    /// The worker's heartbeat went silent: a measurement (or any single
    /// state-machine step) hung longer than the watchdog timeout.
    Stalled {
        /// Host seconds since the last heartbeat when the watchdog fired.
        idle_s: f64,
    },
    /// The campaign panicked (caught via `catch_unwind`).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The campaign reported [`CampaignStatus::Failed`] — a checkpoint or
    /// store write error surfaced by the state machine.
    Io {
        /// The failure reason.
        message: String,
    },
    /// The restart checkpoint could not be loaded or the factory failed
    /// to rebuild the campaign from it.
    CheckpointUnreadable {
        /// The load/rebuild error.
        message: String,
    },
}

impl CampaignFault {
    /// Stable snake_case class name, used in `supervisor.fault` trace
    /// records and report aggregation.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignFault::Stalled { .. } => "stalled",
            CampaignFault::Panicked { .. } => "panicked",
            CampaignFault::Io { .. } => "io",
            CampaignFault::CheckpointUnreadable { .. } => "checkpoint_unreadable",
        }
    }
}

impl std::fmt::Display for CampaignFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignFault::Stalled { idle_s } => {
                write!(f, "stalled: no heartbeat for {idle_s:.2}s")
            }
            CampaignFault::Panicked { message } => write!(f, "panicked: {message}"),
            CampaignFault::Io { message } => write!(f, "io: {message}"),
            CampaignFault::CheckpointUnreadable { message } => {
                write!(f, "checkpoint unreadable: {message}")
            }
        }
    }
}

/// How a supervised campaign ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// The campaign ran to completion (possibly across restarts).
    Completed,
    /// The host wall-clock budget expired; the campaign was parked.
    WallDeadlineExceeded,
    /// The simulated-time budget expired; the campaign parked itself.
    SimDeadlineExceeded,
    /// Too many faults; the supervisor gave up.
    Quarantined,
    /// An external stop was requested via [`SupervisorConfig::stop`]:
    /// parked (with [`STOP_PARK`]) or abandoned (with [`STOP_KILL`]).
    Cancelled,
}

impl CampaignOutcome {
    /// Stable snake_case name, used in `supervisor.done` records.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignOutcome::Completed => "completed",
            CampaignOutcome::WallDeadlineExceeded => "wall_deadline",
            CampaignOutcome::SimDeadlineExceeded => "sim_deadline",
            CampaignOutcome::Quarantined => "quarantined",
            CampaignOutcome::Cancelled => "cancelled",
        }
    }
}

/// The outcome of one supervised campaign: the result (final for
/// [`CampaignOutcome::Completed`], a parked snapshot for deadline exits,
/// absent when quarantined before any attempt finished), plus the full
/// fault and restart history.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The campaign result, when any attempt got far enough to produce
    /// one.
    pub result: Option<TuningResult>,
    /// The final MTL state (evolved Siamese weights) of the campaign,
    /// when it ran with [`ModelSetup::Mtl`](crate::ModelSetup::Mtl) and
    /// completed or parked cleanly. This is how cross-platform transfer
    /// survives the supervisor boundary: the fleet orchestrator
    /// ([`crate::fleet`]) chains the Siamese from one device's campaign
    /// into the next. `None` for non-MTL campaigns and for runs that
    /// ended without a clean result (quarantined, hard-killed).
    pub mtl: Option<Mtl>,
    /// How the supervision ended.
    pub outcome: CampaignOutcome,
    /// Every fault detected, in order.
    pub faults: Vec<CampaignFault>,
    /// Restarts actually performed (≤ faults; the quarantining fault does
    /// not restart).
    pub restarts: u32,
}

/// What a worker thread reports back to the supervisor. Abandoned workers
/// (watchdog-declared stale) report nothing: their channel is simply
/// dropped.
enum WorkerMsg {
    /// The campaign finished; here is the final result plus the final
    /// MTL state (when the campaign ran with momentum transfer).
    Done(Box<TuningResult>, Box<Option<Mtl>>),
    /// The campaign parked; here is the live snapshot.
    Parked {
        /// Why the park happened (decides the [`CampaignOutcome`]).
        reason: ParkReason,
        /// Snapshot at the park point.
        result: Box<TuningResult>,
        /// MTL state at the park point (mirrors the checkpoint).
        mtl: Box<Option<Mtl>>,
    },
    /// The state machine reported a write failure.
    Failed(String),
    /// The campaign panicked.
    Panicked(String),
}

/// Why a worker parked its campaign (each park maps to one outcome).
#[derive(Clone, Copy)]
enum ParkReason {
    /// The simulated-time budget expired (the worker decided).
    Sim,
    /// The supervisor requested the park (wall deadline).
    Wall,
    /// An external [`STOP_PARK`] cancel was requested.
    Cancel,
}

/// What one supervision attempt concluded.
enum Verdict {
    Finished(CampaignOutcome, Option<Box<TuningResult>>, Box<Option<Mtl>>),
    Faulted(CampaignFault),
}

/// The crash-safe campaign driver; see the module docs.
///
/// The caller supplies a *factory* closure that builds the campaign:
/// `factory(None)` for a fresh start, `factory(Some(checkpoint))` after a
/// fault, re-attaching whatever the checkpoint does not carry (the
/// record store, the recorder — use [`Recorder::fork`] to keep one trace
/// across incarnations — and the checkpoint path itself).
pub struct Supervisor {
    cfg: SupervisorConfig,
    recorder: Box<dyn Recorder>,
}

impl Supervisor {
    /// Creates a supervisor with the given policy.
    pub fn new(cfg: SupervisorConfig) -> Supervisor {
        Supervisor { cfg, recorder: Box::new(NoopRecorder) }
    }

    /// Installs a [`Recorder`] for `supervisor.*` records. Hand the same
    /// trace to the campaigns (via the factory) and one trace covers the
    /// supervisor and every campaign incarnation.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The restart backoff before restart `n` (1-based): exponential in
    /// `n` with deterministic seeded jitter. Public so tests can pin the
    /// schedule.
    pub fn backoff_s(&self, restart: u32) -> f64 {
        let base =
            self.cfg.backoff_base_s * self.cfg.backoff_mult.powi(restart as i32 - 1);
        if self.cfg.backoff_jitter <= 0.0 {
            return base;
        }
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        (self.cfg.seed ^ RESTART_SEED_SALT).hash(&mut hasher);
        u64::from(restart).hash(&mut hasher);
        let mut rng = ChaCha8Rng::seed_from_u64(hasher.finish());
        let u: f64 = rng.gen();
        base * (1.0 + self.cfg.backoff_jitter * (2.0 * u - 1.0))
    }

    /// Runs one campaign under supervision until it completes, parks on a
    /// deadline, or is quarantined.
    ///
    /// The factory is called on the supervisor thread once per attempt:
    /// with `None` on the first attempt (and on restarts that found no
    /// checkpoint on disk yet), with the freshly loaded [`Checkpoint`]
    /// after a fault. The built [`Tuner`] is moved onto a worker thread.
    pub fn run<B, F>(&mut self, mut factory: F) -> SupervisedRun
    where
        B: Backend,
        F: FnMut(Option<Checkpoint>) -> std::io::Result<Tuner<B>>,
    {
        if self.recorder.enabled() {
            let mut start = Record::new("supervisor.start")
                .u64("max_restarts", u64::from(self.cfg.max_restarts))
                .f64("watchdog_timeout_s", self.cfg.watchdog_timeout_s);
            if let Some(d) = self.cfg.wall_deadline_s {
                start = start.f64("wall_deadline_s", d);
            }
            if let Some(d) = self.cfg.sim_deadline_s {
                start = start.f64("sim_deadline_s", d);
            }
            self.recorder.emit(start);
        }
        let started = Instant::now();
        let mut faults: Vec<CampaignFault> = Vec::new();
        let mut restarts: u32 = 0;
        loop {
            let attempt = restarts + 1;
            // Build this attempt's campaign: fresh on the first attempt,
            // from the last on-disk checkpoint after a fault. A missing
            // checkpoint file (the campaign faulted before its first
            // write) restarts from scratch — determinism makes that
            // equivalent, just slower.
            let verdict = match self.load_checkpoint(restarts) {
                Err(fault) => Verdict::Faulted(fault),
                Ok(ckpt) => match factory(ckpt) {
                    Err(e) => Verdict::Faulted(CampaignFault::CheckpointUnreadable {
                        message: e.to_string(),
                    }),
                    Ok(tuner) => self.supervise_attempt(tuner, started, attempt),
                },
            };
            match verdict {
                Verdict::Finished(outcome, result, mtl) => {
                    self.emit_done(outcome, restarts);
                    let result = result.map(|boxed| *boxed);
                    return SupervisedRun { result, mtl: *mtl, outcome, faults, restarts };
                }
                Verdict::Faulted(fault) => {
                    self.emit_fault(&fault, attempt);
                    faults.push(fault);
                    // A fault while a stop is pending is not restarted:
                    // the caller asked the campaign to go away.
                    if self.stop_mode() != STOP_NONE {
                        self.emit_done(CampaignOutcome::Cancelled, restarts);
                        return SupervisedRun {
                            result: None,
                            mtl: None,
                            outcome: CampaignOutcome::Cancelled,
                            faults,
                            restarts,
                        };
                    }
                    if restarts >= self.cfg.max_restarts {
                        if self.recorder.enabled() {
                            self.recorder.emit(
                                Record::new("supervisor.quarantine")
                                    .u64("faults", faults.len() as u64),
                            );
                        }
                        self.emit_done(CampaignOutcome::Quarantined, restarts);
                        return SupervisedRun {
                            result: None,
                            mtl: None,
                            outcome: CampaignOutcome::Quarantined,
                            faults,
                            restarts,
                        };
                    }
                    restarts += 1;
                    let backoff = self.backoff_s(restarts);
                    if self.recorder.enabled() {
                        self.recorder.emit(
                            Record::new("supervisor.restart")
                                .u64("restart", u64::from(restarts))
                                .f64("backoff_s", backoff),
                        );
                    }
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                }
            }
        }
    }

    /// Runs several campaigns sequentially, one [`SupervisedRun`] each.
    /// Each campaign brings its own policy (checkpoint path, deadlines,
    /// stop signal) as a boxed [`CampaignFactory`], so one batch can mix
    /// fresh submissions with restart-resumed campaigns; the supervisor's
    /// recorder covers them all.
    pub fn run_many<B: Backend>(
        &mut self,
        campaigns: Vec<(SupervisorConfig, CampaignFactory<B>)>,
    ) -> Vec<SupervisedRun> {
        campaigns
            .into_iter()
            .map(|(cfg, factory)| {
                let saved = std::mem::replace(&mut self.cfg, cfg);
                let run = self.run(factory);
                self.cfg = saved;
                run
            })
            .collect()
    }

    /// The current value of the external stop signal ([`STOP_NONE`] when
    /// no signal is installed).
    fn stop_mode(&self) -> u8 {
        self.cfg
            .stop
            .as_ref()
            .map(|s| s.load(Ordering::SeqCst))
            .unwrap_or(STOP_NONE)
    }

    /// Loads the restart checkpoint for attempt `restarts + 1`. The first
    /// attempt (and any attempt without a checkpoint file on disk) starts
    /// fresh.
    fn load_checkpoint(&self, restarts: u32) -> Result<Option<Checkpoint>, CampaignFault> {
        if restarts == 0 {
            return Ok(None);
        }
        let Some(path) = &self.cfg.checkpoint else { return Ok(None) };
        if !path.exists() {
            return Ok(None);
        }
        Checkpoint::load(path)
            .map(Some)
            .map_err(|e| CampaignFault::CheckpointUnreadable { message: e.to_string() })
    }

    /// Supervises one worker-thread attempt to its conclusion.
    fn supervise_attempt<B: Backend>(
        &mut self,
        tuner: Tuner<B>,
        started: Instant,
        attempt: u32,
    ) -> Verdict {
        // Every attempt gets fresh shared state: an abandoned (stalled)
        // worker from a previous attempt can wake up later and must not
        // be able to touch the current attempt's heartbeat or channel.
        let heartbeat = Arc::new(AtomicU64::new(started.elapsed().as_millis() as u64));
        let abandon = Arc::new(AtomicBool::new(false));
        let park = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        let worker = {
            let heartbeat = Arc::clone(&heartbeat);
            let abandon = Arc::clone(&abandon);
            let park = Arc::clone(&park);
            let stop = self.cfg.stop.clone();
            let sim_deadline = self.cfg.sim_deadline_s;
            let ckpt = self.cfg.checkpoint.clone();
            let tx = tx.clone();
            move || {
                let mut tuner = tuner;
                let park_now = |tuner: &Tuner<B>, reason: ParkReason| -> WorkerMsg {
                    if let Some(path) = &ckpt {
                        if let Err(e) = tuner.park_to(path) {
                            return WorkerMsg::Failed(format!("park failed: {e}"));
                        }
                    }
                    WorkerMsg::Parked {
                        reason,
                        result: Box::new(tuner.result()),
                        mtl: Box::new(tuner.mtl().cloned()),
                    }
                };
                tuner.start();
                loop {
                    // An abandoned worker (the watchdog gave up on it)
                    // stops at the next step boundary without flushing
                    // anything — its successor owns the files now.
                    if abandon.load(Ordering::SeqCst) {
                        return;
                    }
                    match stop.as_ref().map(|s| s.load(Ordering::SeqCst)).unwrap_or(STOP_NONE) {
                        // Hard kill: exit without parking or flushing, as
                        // if the process died here. The supervisor sees
                        // the stop signal and reports Cancelled.
                        STOP_KILL => return,
                        STOP_PARK => {
                            let _ = tx.send(park_now(&tuner, ParkReason::Cancel));
                            return;
                        }
                        _ => {}
                    }
                    heartbeat.store(started.elapsed().as_millis() as u64, Ordering::SeqCst);
                    if sim_deadline.is_some_and(|d| tuner.stats().total_s() >= d) {
                        let _ = tx.send(park_now(&tuner, ParkReason::Sim));
                        return;
                    }
                    if park.load(Ordering::SeqCst) {
                        let _ = tx.send(park_now(&tuner, ParkReason::Wall));
                        return;
                    }
                    match tuner.step() {
                        CampaignStatus::Running => {}
                        CampaignStatus::Done => {
                            let _ = tx.send(WorkerMsg::Done(
                                Box::new(tuner.result()),
                                Box::new(tuner.mtl().cloned()),
                            ));
                            return;
                        }
                        CampaignStatus::Failed(reason) => {
                            let _ = tx.send(WorkerMsg::Failed(reason));
                            return;
                        }
                    }
                }
            }
        };
        let handle = std::thread::Builder::new()
            .name(format!("pruner-campaign-{attempt}"))
            .spawn({
                let tx = tx.clone();
                move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(worker)) {
                        let message = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "campaign panicked".to_string());
                        let _ = tx.send(WorkerMsg::Panicked(message));
                    }
                }
            })
            .expect("spawn campaign worker");
        drop(tx);

        let poll = Duration::from_secs_f64(self.cfg.poll_interval_s.max(0.001));
        // Once the wall deadline fires we ask the worker to park and give
        // it one watchdog interval to do so before abandoning it.
        let mut park_requested_at: Option<Instant> = None;
        loop {
            match rx.recv_timeout(poll) {
                Ok(WorkerMsg::Done(result, mtl)) => {
                    let _ = handle.join();
                    return Verdict::Finished(CampaignOutcome::Completed, Some(result), mtl);
                }
                Ok(WorkerMsg::Parked { reason, result, mtl }) => {
                    let _ = handle.join();
                    let outcome = match reason {
                        ParkReason::Sim => CampaignOutcome::SimDeadlineExceeded,
                        ParkReason::Wall => CampaignOutcome::WallDeadlineExceeded,
                        ParkReason::Cancel => CampaignOutcome::Cancelled,
                    };
                    return Verdict::Finished(outcome, Some(result), mtl);
                }
                Ok(WorkerMsg::Failed(message)) => {
                    let _ = handle.join();
                    return Verdict::Faulted(CampaignFault::Io { message });
                }
                Ok(WorkerMsg::Panicked(message)) => {
                    let _ = handle.join();
                    return Verdict::Faulted(CampaignFault::Panicked { message });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    // A hard kill exits the worker without a message by
                    // design; anything else dying silently is a panic
                    // (catch_unwind should have reported it).
                    if self.stop_mode() == STOP_KILL {
                        return Verdict::Finished(CampaignOutcome::Cancelled, None, Box::new(None));
                    }
                    return Verdict::Faulted(CampaignFault::Panicked {
                        message: "campaign worker exited without reporting".to_string(),
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    // A hard kill returns immediately: the worker is
                    // abandoned (it exits at its next step boundary) and
                    // nothing more is written.
                    if self.stop_mode() == STOP_KILL {
                        abandon.store(true, Ordering::SeqCst);
                        return Verdict::Finished(CampaignOutcome::Cancelled, None, Box::new(None));
                    }
                    let now_ms = started.elapsed().as_millis() as u64;
                    if let Some(requested) = park_requested_at {
                        // The park request itself is watchdogged: a
                        // worker too stalled to park gets abandoned.
                        if requested.elapsed().as_secs_f64() > self.cfg.watchdog_timeout_s {
                            abandon.store(true, Ordering::SeqCst);
                            return Verdict::Finished(
                                CampaignOutcome::WallDeadlineExceeded,
                                None,
                                Box::new(None),
                            );
                        }
                        continue;
                    }
                    if self
                        .cfg
                        .wall_deadline_s
                        .is_some_and(|d| started.elapsed().as_secs_f64() >= d)
                    {
                        park.store(true, Ordering::SeqCst);
                        park_requested_at = Some(Instant::now());
                        continue;
                    }
                    let idle_s =
                        (now_ms.saturating_sub(heartbeat.load(Ordering::SeqCst))) as f64 / 1e3;
                    if idle_s > self.cfg.watchdog_timeout_s {
                        // Stalled: abandon the worker (Rust cannot kill a
                        // thread; the flag stops it at its next step
                        // boundary, before any store-flushing step) and
                        // restart from the last checkpoint.
                        abandon.store(true, Ordering::SeqCst);
                        return Verdict::Faulted(CampaignFault::Stalled { idle_s });
                    }
                }
            }
        }
    }

    /// Emits the `supervisor.fault` record for one detected fault.
    fn emit_fault(&mut self, fault: &CampaignFault, attempt: u32) {
        if !self.recorder.enabled() {
            return;
        }
        let mut record = Record::new("supervisor.fault")
            .str("fault", fault.label())
            .u64("attempt", u64::from(attempt));
        record = match fault {
            CampaignFault::Stalled { idle_s } => record.host_f64("host_idle_s", *idle_s),
            CampaignFault::Panicked { message }
            | CampaignFault::Io { message }
            | CampaignFault::CheckpointUnreadable { message } => {
                record.str("message", message.clone())
            }
        };
        self.recorder.emit(record);
    }

    /// Emits the `supervisor.done` record closing one supervised run.
    fn emit_done(&mut self, outcome: CampaignOutcome, restarts: u32) {
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("supervisor.done")
                    .str("outcome", outcome.label())
                    .u64("restarts", u64::from(restarts)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{ModelSetup, TunerConfig};
    use pruner_cost::ModelKind;
    use pruner_gpu::{GpuSpec, Simulator};
    use pruner_ir::Workload;

    fn quick_cfg() -> TunerConfig {
        TunerConfig { rounds: 4, ..TunerConfig::quick() }
    }

    fn build(ckpt: Option<Checkpoint>) -> std::io::Result<Tuner<Simulator>> {
        match ckpt {
            Some(ckpt) => Tuner::from_checkpoint_backend(ckpt),
            None => {
                let mut t = Tuner::new(
                    GpuSpec::t4(),
                    quick_cfg(),
                    ModelSetup::Fresh(ModelKind::Pacm),
                );
                t.add_task(Workload::matmul(1, 256, 256, 256), 1);
                Ok(t)
            }
        }
    }

    #[test]
    fn healthy_campaign_completes_byte_identical_to_unsupervised() {
        let golden = build(None).unwrap().run();
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let run = sup.run(build);
        assert_eq!(run.outcome, CampaignOutcome::Completed);
        assert_eq!(run.restarts, 0);
        assert!(run.faults.is_empty());
        assert_eq!(
            serde_json::to_string(&run.result.unwrap()).unwrap(),
            serde_json::to_string(&golden).unwrap(),
            "supervision must only observe a healthy campaign"
        );
    }

    #[test]
    fn panicking_factory_quarantines_with_typed_faults() {
        let cfg = SupervisorConfig {
            max_restarts: 2,
            backoff_base_s: 0.001,
            watchdog_timeout_s: 5.0,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg);
        let run = sup.run(|_| -> std::io::Result<Tuner<Simulator>> {
            Err(std::io::Error::other("no such checkpoint"))
        });
        assert_eq!(run.outcome, CampaignOutcome::Quarantined);
        assert_eq!(run.restarts, 2);
        assert_eq!(run.faults.len(), 3, "initial fault + one per restart");
        assert!(run
            .faults
            .iter()
            .all(|f| matches!(f, CampaignFault::CheckpointUnreadable { .. })));
        assert!(run.result.is_none());
    }

    #[test]
    fn backoff_schedule_is_exponential_jittered_and_seeded() {
        let cfg = SupervisorConfig {
            backoff_base_s: 1.0,
            backoff_mult: 2.0,
            backoff_jitter: 0.25,
            seed: 7,
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::new(cfg.clone());
        for n in 1..=4u32 {
            let base = 2f64.powi(n as i32 - 1);
            let b = sup.backoff_s(n);
            assert!(b >= base * 0.75 && b <= base * 1.25, "restart {n}: {b}");
        }
        let again = Supervisor::new(cfg.clone());
        assert_eq!(sup.backoff_s(3), again.backoff_s(3), "same seed, same schedule");
        let other = Supervisor::new(SupervisorConfig { seed: 8, ..cfg.clone() });
        assert_ne!(sup.backoff_s(3), other.backoff_s(3), "different seed, different draw");
        let plain = Supervisor::new(SupervisorConfig { backoff_jitter: 0.0, ..cfg });
        assert_eq!(plain.backoff_s(3), 4.0, "zero jitter is the exact exponential");
    }

    #[test]
    fn fault_labels_and_outcome_labels_are_stable() {
        assert_eq!(CampaignFault::Stalled { idle_s: 1.0 }.label(), "stalled");
        assert_eq!(CampaignFault::Panicked { message: String::new() }.label(), "panicked");
        assert_eq!(CampaignFault::Io { message: String::new() }.label(), "io");
        assert_eq!(
            CampaignFault::CheckpointUnreadable { message: String::new() }.label(),
            "checkpoint_unreadable"
        );
        assert_eq!(CampaignOutcome::Completed.label(), "completed");
        assert_eq!(CampaignOutcome::WallDeadlineExceeded.label(), "wall_deadline");
        assert_eq!(CampaignOutcome::SimDeadlineExceeded.label(), "sim_deadline");
        assert_eq!(CampaignOutcome::Quarantined.label(), "quarantined");
        assert_eq!(CampaignOutcome::Cancelled.label(), "cancelled");
        let f = CampaignFault::Io { message: "disk full".into() };
        assert_eq!(f.to_string(), "io: disk full");
    }

    #[test]
    fn run_many_supervises_each_campaign_with_its_own_policy() {
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let runs = sup.run_many::<Simulator>(vec![
            (SupervisorConfig::default(), Box::new(build)),
            (SupervisorConfig::default(), Box::new(build)),
        ]);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.outcome == CampaignOutcome::Completed));
        let (a, b) = (runs[0].result.as_ref().unwrap(), runs[1].result.as_ref().unwrap());
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "identical campaigns supervise identically"
        );
    }

    #[test]
    fn stop_park_cancels_with_resumable_checkpoint() {
        let dir = std::env::temp_dir()
            .join(format!("pruner-sup-stop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("stop.ckpt.json");
        let stop = Arc::new(AtomicU8::new(STOP_PARK));
        let cfg = SupervisorConfig {
            checkpoint: Some(ckpt.clone()),
            stop: Some(Arc::clone(&stop)),
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg.clone());
        let run = sup.run(build);
        assert_eq!(run.outcome, CampaignOutcome::Cancelled);
        assert!(run.result.is_some(), "graceful cancel returns the parked snapshot");
        assert!(ckpt.exists(), "graceful cancel parks to the checkpoint");

        // Clearing the signal and re-running resumes from the park point
        // and finishes byte-identical to an uninterrupted campaign.
        stop.store(STOP_NONE, Ordering::SeqCst);
        let golden = build(None).unwrap().run();
        let resumed = Supervisor::new(cfg).run(build);
        assert_eq!(resumed.outcome, CampaignOutcome::Completed);
        assert_eq!(
            serde_json::to_string(&resumed.result.unwrap()).unwrap(),
            serde_json::to_string(&golden).unwrap(),
            "cancel + resume must be invisible in the result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_kill_abandons_without_parking() {
        let dir = std::env::temp_dir()
            .join(format!("pruner-sup-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("kill.ckpt.json");
        let cfg = SupervisorConfig {
            checkpoint: Some(ckpt.clone()),
            stop: Some(Arc::new(AtomicU8::new(STOP_KILL))),
            ..SupervisorConfig::default()
        };
        let run = Supervisor::new(cfg).run(build);
        assert_eq!(run.outcome, CampaignOutcome::Cancelled);
        assert!(run.result.is_none(), "a hard kill returns nothing");
        assert_eq!(run.restarts, 0, "a hard kill never restarts");
        assert!(!ckpt.exists(), "a hard kill must not park");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
