//! Per-task tuning state: candidate proposal and measurement bookkeeping.

use crate::measure::Measurer;
use pruner_cost::{CostModel, Sample};
use pruner_ir::Workload;
use pruner_psa::Psa;
use pruner_sketch::{evolve, HardwareLimits, Program};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Number of elite (best measured) programs evolution breeds from.
const ELITE_POOL: usize = 16;

/// Tuning state of one subgraph.
pub struct TaskTuner {
    /// The workload being tuned.
    pub workload: Workload,
    /// Stable task identifier (grouping key for the cost model).
    pub task_id: usize,
    /// Occurrence weight in the parent network.
    pub weight: u64,
    measured: Vec<(Program, f64)>,
    measured_keys: HashSet<String>,
    best: Option<(Program, f64)>,
    rounds_since_improvement: usize,
}

impl TaskTuner {
    /// Creates the tuning state for one workload.
    pub fn new(workload: Workload, task_id: usize, weight: u64) -> TaskTuner {
        TaskTuner {
            workload,
            task_id,
            weight,
            measured: Vec::new(),
            measured_keys: HashSet::new(),
            best: None,
            rounds_since_improvement: 0,
        }
    }

    /// Best measured latency so far (∞ before the first round).
    pub fn best_latency(&self) -> f64 {
        self.best.as_ref().map(|(_, l)| *l).unwrap_or(f64::INFINITY)
    }

    /// Best measured program so far.
    pub fn best_program(&self) -> Option<&Program> {
        self.best.as_ref().map(|(p, _)| p)
    }

    /// Number of measurements taken on this task.
    pub fn num_measured(&self) -> usize {
        self.measured.len()
    }

    /// Rounds elapsed since the task last improved (scheduler signal).
    pub fn rounds_since_improvement(&self) -> usize {
        self.rounds_since_improvement
    }

    /// All labeled samples of this task (for cost-model training).
    pub fn labeled_samples(&self) -> Vec<Sample> {
        self.measured
            .iter()
            .map(|(p, l)| Sample::labeled(p, *l, self.task_id))
            .collect()
    }

    /// Proposes the next batch of programs to measure (one round of
    /// Algorithm 1).
    ///
    /// A fresh sample pool of `pool_size` candidates is generated each
    /// round — evolved from the measured elites plus fresh random samples
    /// (pure random on the first round). With `psa` given, the pool is
    /// **drafted**: PSA keeps the `space_size·(1−ε)` lowest-estimate
    /// candidates and an `ε` share is retained from the unpruned pool so
    /// solutions beyond the constrained space stay reachable; only the
    /// shortlist is scored by the (expensive) cost model. Without `psa`
    /// (the Ansor baseline) the model scores the entire pool, as Ansor's
    /// model-guided evolutionary search does. Returns the top `n`
    /// unmeasured programs; charges generation, PSA and inference time on
    /// `measurer`.
    #[allow(clippy::too_many_arguments)]
    pub fn propose(
        &mut self,
        model: &mut dyn CostModel,
        psa: Option<&Psa>,
        measurer: &mut Measurer,
        limits: &HardwareLimits,
        space_size: usize,
        pool_size: usize,
        epsilon: f64,
        n: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Program> {
        // --- Sample pool: GA offspring + fresh random blood --------------
        let elites = self.elites();
        let pool_size = pool_size.max(space_size);
        let mut pool: Vec<Program> = if elites.is_empty() {
            evolve::init_population(&self.workload, pool_size, limits, rng)
        } else {
            let evolved = evolve::next_generation(&elites, pool_size * 3 / 4, limits, rng);
            let mut p = evolved;
            while p.len() < pool_size {
                p.push(Program::sample(&self.workload, limits, rng));
            }
            p
        };
        measurer.charge_evolution(pool.len());

        // Drop duplicates and already-measured programs up front.
        let mut seen = HashSet::new();
        pool.retain(|p| {
            let key = p.dedup_key();
            !self.measured_keys.contains(&key) && seen.insert(key)
        });
        if pool.is_empty() {
            return Vec::new();
        }

        // --- Draft: PSA shortlist (or the whole pool for the baseline) ---
        let candidates: Vec<Program> = if let Some(psa) = psa {
            measurer.charge_psa_evals(pool.len());
            let n_random = ((space_size as f64) * epsilon).round() as usize;
            let n_target = space_size.saturating_sub(n_random).min(pool.len());
            let shortlist = psa.prune(pool.clone(), n_target);
            let kept: HashSet<String> = shortlist.iter().map(|p| p.dedup_key()).collect();
            let mut c = shortlist;
            // ε-retention: random members of the original (unpruned) pool.
            let leftovers: Vec<&Program> =
                pool.iter().filter(|p| !kept.contains(&p.dedup_key())).collect();
            for _ in 0..n_random.min(leftovers.len()) {
                let pick = rand::Rng::gen_range(rng, 0..leftovers.len());
                c.push(leftovers[pick].clone());
            }
            c
        } else {
            pool
        };

        // --- Verify: cost-model ranking ----------------------------------
        let samples: Vec<Sample> =
            candidates.iter().map(|p| Sample::unlabeled(p, self.task_id)).collect();
        let scores = model.predict(&samples);
        measurer.charge_model_evals(candidates.len());
        // NaN scores (a diverged model) rank last rather than poisoning the
        // sort: the round degrades gracefully instead of crashing.
        let key = |i: usize| if scores[i].is_finite() { scores[i] } else { f32::NEG_INFINITY };
        let mut idx: Vec<usize> = (0..candidates.len()).collect();
        idx.sort_by(|&a, &b| key(b).total_cmp(&key(a)));
        idx.truncate(n);
        let mut picked: Vec<Program> = idx.into_iter().map(|i| candidates[i].clone()).collect();
        // Dedup across the shortlist/ε overlap.
        let mut out_seen = HashSet::new();
        picked.retain(|p| out_seen.insert(p.dedup_key()));
        picked
    }

    /// Records one measurement and updates the incumbent.
    pub fn record(&mut self, prog: Program, latency: f64) {
        let improved = latency < self.best_latency();
        if improved {
            self.best = Some((prog.clone(), latency));
        }
        self.measured_keys.insert(prog.dedup_key());
        self.measured.push((prog, latency));
    }

    /// Marks the end of one tuning round for scheduler bookkeeping.
    pub fn finish_round(&mut self, improved: bool) {
        if improved {
            self.rounds_since_improvement = 0;
        } else {
            self.rounds_since_improvement += 1;
        }
    }

    fn elites(&self) -> Vec<Program> {
        let mut by_latency: Vec<&(Program, f64)> = self.measured.iter().collect();
        by_latency.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"));
        by_latency.into_iter().take(ELITE_POOL).map(|(p, _)| p.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruner_cost::{ModelKind, RandomModel};
    use pruner_gpu::{GpuSpec, Simulator};
    use rand::SeedableRng;

    fn setup() -> (TaskTuner, Measurer, HardwareLimits, ChaCha8Rng) {
        let task = TaskTuner::new(Workload::matmul(1, 256, 256, 256), 0, 1);
        let measurer = Measurer::new(Simulator::new(GpuSpec::t4()));
        (task, measurer, GpuSpec::t4().limits(), ChaCha8Rng::seed_from_u64(7))
    }

    #[test]
    fn propose_returns_requested_count() {
        let (mut task, mut m, limits, mut rng) = setup();
        let mut model = RandomModel::new(1);
        let progs = task.propose(&mut model, None, &mut m, &limits, 128, 128, 0.0, 10, &mut rng);
        assert_eq!(progs.len(), 10);
        assert!(m.stats().model_time_s > 0.0);
    }

    #[test]
    fn propose_with_psa_drafts_each_round() {
        let (mut task, mut m, limits, mut rng) = setup();
        let psa = Psa::new(GpuSpec::t4());
        let mut model = RandomModel::new(1);
        task.propose(&mut model, Some(&psa), &mut m, &limits, 64, 256, 0.2, 5, &mut rng);
        let psa_time = m.stats().psa_time_s;
        assert!(psa_time > 0.0);
        task.propose(&mut model, Some(&psa), &mut m, &limits, 64, 256, 0.2, 5, &mut rng);
        assert!(m.stats().psa_time_s > psa_time, "PSA must draft every round");
        // The model only ever scores the shortlist, not the full pool.
        let model_evals = m.stats().model_time_s / m.time_model().model_eval_s;
        assert!(model_evals <= 2.0 * 64.0 + 1.0, "model scored too much: {model_evals}");
    }

    #[test]
    fn record_tracks_incumbent() {
        let (mut task, _, limits, mut rng) = setup();
        let a = Program::sample(&task.workload, &limits, &mut rng);
        let b = Program::sample(&task.workload, &limits, &mut rng);
        task.record(a, 2e-3);
        task.record(b, 1e-3);
        assert_eq!(task.best_latency(), 1e-3);
        assert_eq!(task.num_measured(), 2);
        assert_eq!(task.labeled_samples().len(), 2);
    }

    #[test]
    fn proposals_avoid_measured_programs() {
        let (mut task, mut m, limits, mut rng) = setup();
        let mut model = RandomModel::new(2);
        let first = task.propose(&mut model, None, &mut m, &limits, 64, 64, 0.0, 8, &mut rng);
        for p in &first {
            task.record(p.clone(), 1e-3);
        }
        let second = task.propose(&mut model, None, &mut m, &limits, 64, 64, 0.0, 8, &mut rng);
        let first_keys: HashSet<String> = first.iter().map(|p| p.dedup_key()).collect();
        assert!(second.iter().all(|p| !first_keys.contains(&p.dedup_key())));
    }

    #[test]
    fn nan_scores_degrade_gracefully() {
        // Failure injection: a model that returns NaN for every other
        // candidate must not crash the round, and real scores still rank.
        struct HalfNan;
        impl pruner_cost::CostModel for HalfNan {
            fn name(&self) -> &'static str {
                "half-nan"
            }
            fn predict(&mut self, samples: &[Sample]) -> Vec<f32> {
                (0..samples.len())
                    .map(|i| if i % 2 == 0 { f32::NAN } else { i as f32 })
                    .collect()
            }
            fn fit(&mut self, _: &[Sample], _: usize) -> f64 {
                0.0
            }
            fn clone_box(&self) -> Box<dyn pruner_cost::CostModel> {
                Box::new(HalfNan)
            }
        }
        let (mut task, mut m, limits, mut rng) = setup();
        let mut model = HalfNan;
        let progs = task.propose(&mut model, None, &mut m, &limits, 64, 64, 0.0, 8, &mut rng);
        assert_eq!(progs.len(), 8, "NaN scores must not shrink the proposal");
    }

    #[test]
    fn scheduler_counters() {
        let (mut task, _, _, _) = setup();
        task.finish_round(false);
        task.finish_round(false);
        assert_eq!(task.rounds_since_improvement(), 2);
        task.finish_round(true);
        assert_eq!(task.rounds_since_improvement(), 0);
    }

    #[test]
    fn model_kinds_can_propose() {
        let (mut task, mut m, limits, mut rng) = setup();
        for kind in [ModelKind::Pacm, ModelKind::Ansor] {
            let mut model = kind.build(3);
            let progs =
                task.propose(model.as_mut(), None, &mut m, &limits, 32, 32, 0.0, 4, &mut rng);
            assert!(!progs.is_empty());
        }
    }
}
