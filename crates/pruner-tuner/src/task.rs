//! Per-task tuning state: candidate proposal and measurement bookkeeping.

use crate::measure::{Measurer, PipelineStage};
use pruner_cost::{CostModel, Sample};
use pruner_ir::Workload;
use pruner_psa::Psa;
use pruner_sketch::{evolve, CandidateArena, GeneBuf, HardwareLimits, Program, WorkloadCtx};
use pruner_trace::{NoopRecorder, Recorder};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Number of elite (best measured) programs evolution breeds from.
const ELITE_POOL: usize = 16;

/// One round's proposal knobs (Algorithm 1 parameters plus the worker
/// fan-out configuration).
///
/// `seed` and `round` feed the per-candidate RNG derivation in
/// [`pruner_sketch::evolve::derive_item_seed`]; `threads` only controls how
/// the work is scheduled — every proposal is bit-identical at any thread
/// count.
#[derive(Debug, Clone, Copy)]
pub struct ProposeParams {
    /// Search-space size per round (`space_size` of Algorithm 1).
    pub space_size: usize,
    /// Raw sample-pool size drawn before drafting.
    pub pool_size: usize,
    /// ε share of the space retained at random from the unpruned pool.
    pub epsilon: f64,
    /// Number of programs to propose for measurement.
    pub n: usize,
    /// Campaign seed (mixed with the task id per candidate).
    pub seed: u64,
    /// Global tuning-round index.
    pub round: u64,
    /// Worker threads for generation, PSA drafting and inference.
    pub threads: usize,
}

/// Candidate-funnel counts of one proposal round: how many programs each
/// draft-then-verify stage produced. All counts are deterministic (same at
/// any thread count, traced or not); they feed the per-round `round`
/// trace record and the end-of-campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FunnelCounts {
    /// Programs bred by the GA fan-out (offspring + fresh samples).
    pub generated: usize,
    /// Programs left after dropping duplicates and already-measured keys.
    pub deduped: usize,
    /// Programs PSA kept in the target space (`None` for the no-PSA
    /// baseline, where the whole pool goes to the model).
    pub psa_survivors: Option<usize>,
    /// Programs re-admitted by ε-retention from the unpruned pool.
    pub eps_extras: usize,
    /// Programs scored by the cost model.
    pub predicted: usize,
    /// Programs proposed for measurement (top `n` after ranking).
    pub proposed: usize,
}

/// Tuning state of one subgraph.
pub struct TaskTuner {
    /// The workload being tuned.
    pub workload: Workload,
    /// Stable task identifier (grouping key for the cost model).
    pub task_id: usize,
    /// Occurrence weight in the parent network.
    pub weight: u64,
    /// Shared schedule-space context for the arena hot path.
    ctx: Arc<WorkloadCtx>,
    measured: Vec<(Program, f64)>,
    /// Schedule fingerprints of every known program (measured or
    /// quarantined) — the hot-path dedup set. The string `dedup_key` form
    /// survives only in the on-disk store/checkpoint formats.
    measured_fps: HashSet<u64>,
    /// Quarantined programs: `dedup_key → fingerprint` (fingerprint 0 when
    /// restored from a checkpoint that predates fingerprints).
    quarantined: BTreeMap<String, u64>,
    best: Option<(Program, f64)>,
    rounds_since_improvement: usize,
}

impl TaskTuner {
    /// Creates the tuning state for one workload.
    pub fn new(workload: Workload, task_id: usize, weight: u64) -> TaskTuner {
        let ctx = Arc::new(WorkloadCtx::new(&workload));
        TaskTuner {
            workload,
            task_id,
            weight,
            ctx,
            measured: Vec::new(),
            measured_fps: HashSet::new(),
            quarantined: BTreeMap::new(),
            best: None,
            rounds_since_improvement: 0,
        }
    }

    /// Rebuilds the tuning state from checkpointed measurements. The
    /// incumbent is re-derived by replaying the measurement order, so a
    /// restored task is indistinguishable from one that never stopped.
    ///
    /// `quarantined_fps` pairs with `quarantined` by position; checkpoints
    /// written before fingerprints existed restore with empty fps (those
    /// entries can no longer block re-proposal, only re-recording).
    pub(crate) fn from_checkpoint(
        workload: Workload,
        task_id: usize,
        weight: u64,
        measured: Vec<(Program, f64)>,
        quarantined: Vec<String>,
        quarantined_fps: Vec<u64>,
        rounds_since_improvement: usize,
    ) -> TaskTuner {
        let mut task = TaskTuner::new(workload, task_id, weight);
        for (prog, latency) in measured {
            task.record(prog, latency);
        }
        for (i, key) in quarantined.into_iter().enumerate() {
            let fp = quarantined_fps.get(i).copied().unwrap_or(0);
            if fp != 0 {
                task.measured_fps.insert(fp);
            }
            task.quarantined.insert(key, fp);
        }
        task.rounds_since_improvement = rounds_since_improvement;
        task
    }

    /// The measurement log, in measurement order (for checkpointing).
    pub(crate) fn measured_log(&self) -> &[(Program, f64)] {
        &self.measured
    }

    /// Quarantined program keys in deterministic (sorted) order.
    pub(crate) fn quarantined_keys(&self) -> Vec<String> {
        self.quarantined.keys().cloned().collect()
    }

    /// Quarantined program fingerprints, positionally aligned with
    /// [`TaskTuner::quarantined_keys`].
    pub(crate) fn quarantined_fps(&self) -> Vec<u64> {
        self.quarantined.values().copied().collect()
    }

    /// Best measured latency so far (∞ before the first round).
    pub fn best_latency(&self) -> f64 {
        self.best.as_ref().map(|(_, l)| *l).unwrap_or(f64::INFINITY)
    }

    /// Best measured program so far.
    pub fn best_program(&self) -> Option<&Program> {
        self.best.as_ref().map(|(p, _)| p)
    }

    /// Number of measurements taken on this task.
    pub fn num_measured(&self) -> usize {
        self.measured.len()
    }

    /// Rounds elapsed since the task last improved (scheduler signal).
    pub fn rounds_since_improvement(&self) -> usize {
        self.rounds_since_improvement
    }

    /// All labeled samples of this task (for cost-model training).
    pub fn labeled_samples(&self) -> Vec<Sample> {
        self.measured
            .iter()
            .map(|(p, l)| Sample::labeled(p, *l, self.task_id))
            .collect()
    }

    /// Proposes the next batch of programs to measure (one round of
    /// Algorithm 1).
    ///
    /// A fresh sample pool of `pool_size` candidates is generated each
    /// round — evolved from the measured elites plus fresh random samples
    /// (pure random on the first round). With `psa` given, the pool is
    /// **drafted**: PSA keeps the `space_size·(1−ε)` lowest-estimate
    /// candidates and an `ε` share is retained from the unpruned pool so
    /// solutions beyond the constrained space stay reachable; only the
    /// shortlist is scored by the (expensive) cost model. Without `psa`
    /// (the Ansor baseline) the model scores the entire pool, as Ansor's
    /// model-guided evolutionary search does. Returns the top `n`
    /// unmeasured programs; charges generation, PSA and inference time on
    /// `measurer`.
    ///
    /// Generation, PSA estimation, feature extraction and cost-model
    /// inference all fan out over `params.threads` workers; `rng` is only
    /// consumed by the (cheap, sequential) ε-retention draw, so the
    /// proposal is bit-identical at any thread count.
    pub fn propose<B: pruner_gpu::Backend>(
        &mut self,
        model: &dyn CostModel,
        psa: Option<&Psa>,
        measurer: &mut Measurer<B>,
        limits: &HardwareLimits,
        params: &ProposeParams,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Program> {
        self.propose_traced(model, psa, measurer, limits, params, rng, &mut NoopRecorder).0
    }

    /// [`TaskTuner::propose`] with an explicit [`Recorder`] and the
    /// round's [`FunnelCounts`]: identical proposals, plus stage spans
    /// (`propose.generate` / `propose.draft` / `propose.predict`, whose
    /// elapsed times also feed the [`SearchStats`](crate::SearchStats)
    /// wall ledger) and per-stage counters from the traced generation,
    /// PSA and inference wrappers. With a [`pruner_trace::NoopRecorder`]
    /// this *is* `propose` — no clock is read and no event is built.
    #[allow(clippy::too_many_arguments)]
    pub fn propose_traced<B: pruner_gpu::Backend>(
        &mut self,
        model: &dyn CostModel,
        psa: Option<&Psa>,
        measurer: &mut Measurer<B>,
        limits: &HardwareLimits,
        params: &ProposeParams,
        rng: &mut ChaCha8Rng,
        rec: &mut dyn Recorder,
    ) -> (Vec<Program>, FunnelCounts) {
        let threads = params.threads.max(1);
        // Distinct tasks tuned in the same round must not share candidate
        // RNG streams: fold the task id into the campaign seed.
        let gen_seed =
            params.seed ^ (self.task_id as u64).wrapping_mul(0x517C_C1B7_2722_0A95);
        let mut funnel = FunnelCounts::default();

        // --- Sample pool: GA offspring + fresh random blood --------------
        rec.span_begin("propose.generate");
        let elites = self.elites();
        let pool_size = params.pool_size.max(params.space_size);
        let mut arena: CandidateArena = if elites.is_empty() {
            evolve::init_arena_traced(
                &self.ctx,
                pool_size,
                limits,
                gen_seed,
                params.round,
                threads,
                rec,
            )
        } else {
            let elite_genes: Vec<GeneBuf> =
                elites.iter().map(|p| self.ctx.genes_from_schedule(&p.schedule)).collect();
            // The fresh-blood tail reuses the same derived-seed generator
            // with a disjoint round tag so its streams never collide with
            // the offspring streams.
            let mut a = evolve::next_generation_arena_traced(
                &self.ctx,
                &elite_genes,
                pool_size * 3 / 4,
                limits,
                gen_seed,
                params.round,
                threads,
                rec,
            );
            let fresh = pool_size - a.len();
            a.append(&evolve::init_arena_traced(
                &self.ctx,
                fresh,
                limits,
                gen_seed ^ 0xA076_1D64_78BD_642F,
                params.round,
                threads,
                rec,
            ));
            a
        };
        funnel.generated = arena.len();
        measurer.charge_evolution(arena.len());

        // Drop duplicates and already-measured programs up front — one
        // batch pass over the fingerprint column, no string keys.
        let mut seen = HashSet::new();
        let measured_fps = &self.measured_fps;
        arena.retain_with(|_, fp| !measured_fps.contains(&fp) && seen.insert(fp));
        funnel.deduped = arena.len();
        measurer.record_wall(PipelineStage::Generate, rec.span_end("propose.generate"));
        if arena.is_empty() {
            return (Vec::new(), funnel);
        }
        // Stats rows are deferred during generation; fill them only for
        // the deduped survivors (the GA path is typically ~75% duplicates).
        arena.ensure_stats();

        // --- Draft: PSA shortlist (or the whole pool for the baseline) ---
        let candidates: Vec<usize> = if let Some(psa) = psa {
            rec.span_begin("propose.draft");
            measurer.charge_psa_evals(arena.len());
            let n_random = ((params.space_size as f64) * params.epsilon).round() as usize;
            let n_target = params.space_size.saturating_sub(n_random).min(arena.len());
            let shortlist = psa.prune_arena_traced(&arena, n_target, threads, rec);
            funnel.psa_survivors = Some(shortlist.len());
            let kept: HashSet<usize> = shortlist.iter().copied().collect();
            let mut c = shortlist;
            // ε-retention: random members of the original (unpruned) pool.
            let leftovers: Vec<usize> =
                (0..arena.len()).filter(|i| !kept.contains(i)).collect();
            for _ in 0..n_random.min(leftovers.len()) {
                let pick = rand::Rng::gen_range(rng, 0..leftovers.len());
                c.push(leftovers[pick]);
            }
            funnel.eps_extras = c.len() - funnel.psa_survivors.unwrap_or(0);
            measurer.record_wall(PipelineStage::Psa, rec.span_end("propose.draft"));
            c
        } else {
            (0..arena.len()).collect()
        };
        funnel.predicted = candidates.len();

        // --- Verify: cost-model ranking ----------------------------------
        rec.span_begin("propose.predict");
        let samples = featurize_arena_par(&arena, &candidates, self.task_id, threads);
        let scores = model.predict_batch_traced(&samples, threads, rec);
        measurer.charge_model_evals(candidates.len());
        measurer.record_wall(PipelineStage::Predict, rec.span_end("propose.predict"));
        // NaN scores (a diverged model) rank last rather than poisoning the
        // sort: the round degrades gracefully instead of crashing.
        let key = |i: usize| if scores[i].is_finite() { scores[i] } else { f32::NEG_INFINITY };
        let mut idx: Vec<usize> = (0..candidates.len()).collect();
        idx.sort_by(|&a, &b| key(b).total_cmp(&key(a)));
        idx.truncate(params.n);
        let mut picked_idx: Vec<usize> = idx.into_iter().map(|i| candidates[i]).collect();
        // Dedup across the shortlist/ε overlap.
        let mut out_seen = HashSet::new();
        picked_idx.retain(|&i| out_seen.insert(arena.fingerprint(i)));
        funnel.proposed = picked_idx.len();
        // Materialize to `Program` only here, at the measure boundary.
        let picked: Vec<Program> = picked_idx.into_iter().map(|i| arena.program(i)).collect();
        (picked, funnel)
    }

    /// Records one measurement and updates the incumbent.
    pub fn record(&mut self, prog: Program, latency: f64) {
        let improved = latency < self.best_latency();
        if improved {
            self.best = Some((prog.clone(), latency));
        }
        self.measured_fps.insert(prog.fingerprint());
        self.measured.push((prog, latency));
    }

    /// Whether this task has already seen the program — recorded as a
    /// measurement (live or replayed from a record store) or quarantined.
    /// Known programs are never re-proposed; the warm-up also consults
    /// this so a fallback replayed from a store is not double-recorded.
    pub fn knows(&self, prog: &Program) -> bool {
        self.measured_fps.contains(&prog.fingerprint())
    }

    /// Quarantines a program whose measurement failed permanently: it is
    /// never re-proposed (its fingerprint joins the measured set) and never
    /// enters the training data (it is not recorded as a labeled sample).
    /// The string key is kept alongside the fingerprint only because the
    /// on-disk checkpoint format names quarantined programs by key.
    pub fn quarantine(&mut self, prog: &Program) {
        let fp = prog.fingerprint();
        self.measured_fps.insert(fp);
        self.quarantined.insert(prog.dedup_key(), fp);
    }

    /// Number of programs quarantined on this task.
    pub fn num_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Marks the end of one tuning round for scheduler bookkeeping.
    pub fn finish_round(&mut self, improved: bool) {
        if improved {
            self.rounds_since_improvement = 0;
        } else {
            self.rounds_since_improvement += 1;
        }
    }

    fn elites(&self) -> Vec<Program> {
        let mut by_latency: Vec<&(Program, f64)> = self.measured.iter().collect();
        by_latency.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"));
        by_latency.into_iter().take(ELITE_POOL).map(|(p, _)| p.clone()).collect()
    }
}

/// Extracts features for the selected arena candidates, fanning the
/// per-candidate work out over contiguous index bands and merging in index
/// order — the sample list is identical at any thread count.
fn featurize_arena_par(
    arena: &CandidateArena,
    picks: &[usize],
    task_id: usize,
    threads: usize,
) -> Vec<Sample> {
    let workers = threads.max(1).min(picks.len().max(1));
    if workers <= 1 {
        return picks.iter().map(|&i| Sample::from_arena(arena, i, task_id)).collect();
    }
    let mut slots: Vec<Option<Sample>> = (0..picks.len()).map(|_| None).collect();
    let band = picks.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (out_band, pick_band) in slots.chunks_mut(band).zip(picks.chunks(band)) {
            scope.spawn(move |_| {
                for (slot, &i) in out_band.iter_mut().zip(pick_band) {
                    *slot = Some(Sample::from_arena(arena, i, task_id));
                }
            });
        }
    })
    .expect("featurization workers must not panic");
    slots.into_iter().map(|s| s.expect("every slot is filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruner_cost::{ModelKind, RandomModel};
    use pruner_gpu::{GpuSpec, Simulator};
    use rand::SeedableRng;

    fn setup() -> (TaskTuner, Measurer, HardwareLimits, ChaCha8Rng) {
        let task = TaskTuner::new(Workload::matmul(1, 256, 256, 256), 0, 1);
        let measurer = Measurer::new(Simulator::new(GpuSpec::t4()));
        (task, measurer, GpuSpec::t4().limits(), ChaCha8Rng::seed_from_u64(7))
    }

    fn params(space_size: usize, pool_size: usize, epsilon: f64, n: usize, round: u64) -> ProposeParams {
        ProposeParams { space_size, pool_size, epsilon, n, seed: 7, round, threads: 1 }
    }

    #[test]
    fn propose_returns_requested_count() {
        let (mut task, mut m, limits, mut rng) = setup();
        let model = RandomModel::new(1);
        let progs =
            task.propose(&model, None, &mut m, &limits, &params(128, 128, 0.0, 10, 0), &mut rng);
        assert_eq!(progs.len(), 10);
        assert!(m.stats().model_time_s > 0.0);
    }

    #[test]
    fn propose_with_psa_drafts_each_round() {
        let (mut task, mut m, limits, mut rng) = setup();
        let psa = Psa::new(GpuSpec::t4());
        let model = RandomModel::new(1);
        task.propose(&model, Some(&psa), &mut m, &limits, &params(64, 256, 0.2, 5, 0), &mut rng);
        let psa_time = m.stats().psa_time_s;
        assert!(psa_time > 0.0);
        task.propose(&model, Some(&psa), &mut m, &limits, &params(64, 256, 0.2, 5, 1), &mut rng);
        assert!(m.stats().psa_time_s > psa_time, "PSA must draft every round");
        // The model only ever scores the shortlist, not the full pool.
        let model_evals = m.stats().model_time_s / m.time_model().model_eval_s;
        assert!(model_evals <= 2.0 * 64.0 + 1.0, "model scored too much: {model_evals}");
    }

    #[test]
    fn propose_is_thread_count_invariant() {
        let psa = Psa::new(GpuSpec::t4());
        let run = |threads: usize| {
            // Fresh model per run: RandomModel's per-call counter is state.
            let model = RandomModel::new(1);
            let (mut task, mut m, limits, mut rng) = setup();
            let mut all = Vec::new();
            for round in 0..3 {
                let p = ProposeParams { threads, ..params(64, 256, 0.2, 6, round) };
                let progs = task.propose(&model, Some(&psa), &mut m, &limits, &p, &mut rng);
                for prog in &progs {
                    task.record(prog.clone(), m.measure(prog).latency().unwrap());
                }
                all.extend(progs);
            }
            (all, m.stats())
        };
        let (serial, serial_stats) = run(1);
        for threads in [2, 4, 8] {
            let (progs, stats) = run(threads);
            assert_eq!(progs, serial, "proposals diverged at {threads} threads");
            assert_eq!(stats, serial_stats, "stats diverged at {threads} threads");
        }
    }

    #[test]
    fn propose_traced_matches_untraced_and_counts_the_funnel() {
        let psa = Psa::new(GpuSpec::t4());
        let run = |traced: bool| {
            let model = RandomModel::new(1);
            let (mut task, mut m, limits, mut rng) = setup();
            let mut trace = pruner_trace::TraceHandle::new();
            let mut all = Vec::new();
            let mut funnels = Vec::new();
            for round in 0..3 {
                let p = params(64, 256, 0.2, 6, round);
                let (progs, funnel) = if traced {
                    task.propose_traced(
                        &model, Some(&psa), &mut m, &limits, &p, &mut rng, &mut trace,
                    )
                } else {
                    task.propose_traced(
                        &model,
                        Some(&psa),
                        &mut m,
                        &limits,
                        &p,
                        &mut rng,
                        &mut pruner_trace::NoopRecorder,
                    )
                };
                for prog in &progs {
                    task.record(prog.clone(), m.measure(prog).latency().unwrap());
                }
                all.extend(progs);
                funnels.push(funnel);
            }
            (all, funnels, m.stats(), trace)
        };
        let (plain, plain_funnels, plain_stats, _) = run(false);
        let (traced, traced_funnels, traced_stats, trace) = run(true);
        assert_eq!(plain, traced, "recorder must not influence proposals");
        assert_eq!(plain_funnels, traced_funnels, "funnel counts are deterministic");
        assert_eq!(plain_stats, traced_stats);
        for f in &traced_funnels {
            assert!(f.generated >= f.deduped, "dedup can only shrink the pool");
            let survivors = f.psa_survivors.expect("PSA was on");
            assert!(survivors <= f.deduped);
            assert_eq!(f.predicted, survivors + f.eps_extras, "model scores shortlist + ε");
            assert!(f.proposed <= 6);
        }
        // Wall timings came from trace spans: traced runs have them, the
        // NoopRecorder run performed no clock reads at all.
        assert!(traced_stats.pipeline_wall_s() >= 0.0);
        assert_eq!(plain_stats.pipeline_wall_s(), 0.0);
        let records = trace.records();
        let spans: Vec<&str> = records
            .iter()
            .filter(|r| r.kind() == "span")
            .filter_map(|r| r.get("name").and_then(pruner_trace::Value::as_str))
            .map(|s| match s {
                "propose.generate" => "generate",
                "propose.draft" => "draft",
                "propose.predict" => "predict",
                _ => "inner",
            })
            .collect();
        assert!(spans.contains(&"generate") && spans.contains(&"draft"));
        assert!(spans.contains(&"predict") && spans.contains(&"inner"));
    }

    #[test]
    fn record_tracks_incumbent() {
        let (mut task, _, limits, mut rng) = setup();
        let a = Program::sample(&task.workload, &limits, &mut rng);
        let b = Program::sample(&task.workload, &limits, &mut rng);
        task.record(a, 2e-3);
        task.record(b, 1e-3);
        assert_eq!(task.best_latency(), 1e-3);
        assert_eq!(task.num_measured(), 2);
        assert_eq!(task.labeled_samples().len(), 2);
    }

    #[test]
    fn proposals_avoid_measured_programs() {
        let (mut task, mut m, limits, mut rng) = setup();
        let model = RandomModel::new(2);
        let first =
            task.propose(&model, None, &mut m, &limits, &params(64, 64, 0.0, 8, 0), &mut rng);
        for p in &first {
            task.record(p.clone(), 1e-3);
        }
        let second =
            task.propose(&model, None, &mut m, &limits, &params(64, 64, 0.0, 8, 1), &mut rng);
        let first_keys: HashSet<String> = first.iter().map(|p| p.dedup_key()).collect();
        assert!(second.iter().all(|p| !first_keys.contains(&p.dedup_key())));
    }

    #[test]
    fn quarantined_programs_never_return() {
        let (mut task, mut m, limits, mut rng) = setup();
        let model = RandomModel::new(2);
        let first =
            task.propose(&model, None, &mut m, &limits, &params(64, 64, 0.0, 8, 0), &mut rng);
        let bad = first[0].clone();
        task.quarantine(&bad);
        assert_eq!(task.num_quarantined(), 1);
        assert!(task.labeled_samples().is_empty(), "quarantine must not create training data");
        let second =
            task.propose(&model, None, &mut m, &limits, &params(64, 64, 0.0, 8, 1), &mut rng);
        assert!(
            second.iter().all(|p| p.dedup_key() != bad.dedup_key()),
            "a quarantined program must never be re-proposed"
        );
    }

    #[test]
    fn checkpoint_round_trip_restores_incumbent_and_quarantine() {
        let (mut task, _, limits, mut rng) = setup();
        let a = Program::sample(&task.workload, &limits, &mut rng);
        let b = Program::sample(&task.workload, &limits, &mut rng);
        let c = Program::sample(&task.workload, &limits, &mut rng);
        task.record(a, 2e-3);
        task.record(b.clone(), 1e-3);
        task.quarantine(&c);
        task.finish_round(false);
        let restored = TaskTuner::from_checkpoint(
            task.workload.clone(),
            task.task_id,
            task.weight,
            task.measured_log().to_vec(),
            task.quarantined_keys(),
            task.quarantined_fps(),
            task.rounds_since_improvement(),
        );
        assert_eq!(restored.best_latency(), 1e-3);
        assert_eq!(restored.best_program().map(|p| p.dedup_key()), Some(b.dedup_key()));
        assert_eq!(restored.num_measured(), 2);
        assert_eq!(restored.num_quarantined(), 1);
        assert_eq!(restored.rounds_since_improvement(), 1);
    }

    #[test]
    fn nan_scores_degrade_gracefully() {
        // Failure injection: a model that returns NaN for every other
        // candidate must not crash the round, and real scores still rank.
        struct HalfNan;
        impl pruner_cost::CostModel for HalfNan {
            fn name(&self) -> &'static str {
                "half-nan"
            }
            fn predict(&self, samples: &[Sample]) -> Vec<f32> {
                (0..samples.len())
                    .map(|i| if i % 2 == 0 { f32::NAN } else { i as f32 })
                    .collect()
            }
            fn fit(&mut self, _: &[Sample], _: usize) -> f64 {
                0.0
            }
            fn clone_box(&self) -> Box<dyn pruner_cost::CostModel> {
                Box::new(HalfNan)
            }
        }
        let (mut task, mut m, limits, mut rng) = setup();
        let model = HalfNan;
        let progs =
            task.propose(&model, None, &mut m, &limits, &params(64, 64, 0.0, 8, 0), &mut rng);
        assert_eq!(progs.len(), 8, "NaN scores must not shrink the proposal");
    }

    #[test]
    fn scheduler_counters() {
        let (mut task, _, _, _) = setup();
        task.finish_round(false);
        task.finish_round(false);
        assert_eq!(task.rounds_since_improvement(), 2);
        task.finish_round(true);
        assert_eq!(task.rounds_since_improvement(), 0);
    }

    #[test]
    fn model_kinds_can_propose() {
        let (mut task, mut m, limits, mut rng) = setup();
        for (round, kind) in [ModelKind::Pacm, ModelKind::Ansor].into_iter().enumerate() {
            let model = kind.build(3);
            let progs = task.propose(
                model.as_ref(),
                None,
                &mut m,
                &limits,
                &params(32, 32, 0.0, 4, round as u64),
                &mut rng,
            );
            assert!(!progs.is_empty());
        }
    }
}
