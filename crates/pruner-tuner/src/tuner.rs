//! The tuning orchestrator: rounds, task scheduling, model updates.

use crate::curve::{CurvePoint, TuningCurve};
use crate::measure::{Measurer, SearchStats, TimeModel};
use crate::mtl::Mtl;
use crate::task::{ProposeParams, TaskTuner};
use pruner_cost::{CostModel, ModelKind, PacmModel, Sample};
use pruner_gpu::{GpuSpec, Simulator};
use pruner_ir::{Network, Workload};
use pruner_psa::{Psa, PsaConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How the tuner obtains and updates its cost model.
#[allow(clippy::large_enum_variant)] // configuration object, built once per campaign
pub enum ModelSetup {
    /// Train a fresh model online from this campaign's measurements only
    /// (Ansor, Pruner w/o MTL).
    Fresh(ModelKind),
    /// Start from a pre-trained model and fine-tune it online without any
    /// stabilization (TensetMLP / TLP / Pruner offline mode).
    Offline(Box<dyn CostModel>),
    /// Momentum Transfer Learning around a pre-trained PaCM (full Pruner).
    Mtl {
        /// The cross-platform pre-trained Siamese model.
        pretrained: PacmModel,
        /// Momentum coefficient (paper: 0.99).
        momentum: f32,
    },
}

/// Campaign parameters. Defaults follow the paper's setup: 200 rounds × 10
/// measurements = 2,000 trials, target space 512, with a small ε share of
/// the original space retained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Tuning rounds.
    pub rounds: usize,
    /// Programs measured per round.
    pub measure_per_round: usize,
    /// Candidate sample-space size per round (`s` in §2.1).
    pub space_size: usize,
    /// Per-round sample-pool size the GA generates and PSA drafts from.
    pub target_pool: usize,
    /// Whether PSA pruning is enabled.
    pub use_psa: bool,
    /// Fraction of each round's sample space drawn from the *original*
    /// space to keep solutions beyond the pruned space reachable.
    pub epsilon: f64,
    /// Fine-tuning epochs per round for fresh/offline models.
    pub train_epochs: usize,
    /// Fine-tuning epochs per MTL round (the target restarts from the
    /// Siamese weights each round, so it needs enough steps to adapt).
    pub mtl_epochs: usize,
    /// Upper bound on the training window (most recent labeled samples).
    pub train_window: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the candidate-evaluation pipeline (generation,
    /// PSA drafting, feature extraction, cost-model inference). `1` runs
    /// the pipeline serially; any value produces bit-identical results.
    #[serde(default = "default_threads")]
    pub threads: usize,
}

/// Default worker count: the host's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            rounds: 200,
            measure_per_round: 10,
            space_size: 512,
            target_pool: 2048,
            use_psa: true,
            epsilon: 0.2,
            train_epochs: 2,
            mtl_epochs: 3,
            train_window: 1536,
            seed: 42,
            threads: default_threads(),
        }
    }
}

impl TunerConfig {
    /// A scaled-down config for tests and quick demos.
    pub fn quick() -> TunerConfig {
        TunerConfig {
            rounds: 10,
            measure_per_round: 4,
            space_size: 64,
            target_pool: 256,
            ..TunerConfig::default()
        }
    }
}

/// Outcome of a tuning campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningResult {
    /// Best-so-far trajectory (weighted end-to-end latency for networks).
    pub curve: TuningCurve,
    /// The simulated-time ledger.
    pub stats: SearchStats,
    /// Final best weighted latency, seconds.
    pub best_latency_s: f64,
    /// Final best latency per task, in task order.
    pub per_task_best: Vec<(Workload, f64)>,
    /// The winning schedule per task, in task order (present whenever the
    /// task was measured at least once).
    pub best_programs: Vec<Option<pruner_sketch::Program>>,
}

/// The tuning campaign driver.
///
/// Add tasks (or a whole network), then [`Tuner::run`]. Each round the
/// scheduler picks the most promising task, the task proposes candidates
/// from its (optionally PSA-pruned) space, the best-scored candidates are
/// measured, and the cost model is updated — by plain fitting, or by an MTL
/// round when configured.
pub struct Tuner {
    cfg: TunerConfig,
    measurer: Measurer,
    psa: Option<Psa>,
    limits: pruner_sketch::HardwareLimits,
    tasks: Vec<TaskTuner>,
    model: Box<dyn CostModel>,
    mtl: Option<Mtl>,
    rng: ChaCha8Rng,
}

impl Tuner {
    /// Creates a tuner for one platform.
    pub fn new(spec: GpuSpec, cfg: TunerConfig, setup: ModelSetup) -> Tuner {
        Self::with_psa_config(spec, cfg, setup, PsaConfig::default())
    }

    /// Creates a tuner with explicit PSA penalty toggles (ablations).
    pub fn with_psa_config(
        spec: GpuSpec,
        cfg: TunerConfig,
        setup: ModelSetup,
        psa_cfg: PsaConfig,
    ) -> Tuner {
        let sim = Simulator::new(spec.clone());
        let limits = spec.limits();
        let psa = cfg.use_psa.then(|| Psa::with_config(spec, psa_cfg));
        let (model, mtl): (Box<dyn CostModel>, Option<Mtl>) = match setup {
            ModelSetup::Fresh(kind) => (kind.build(cfg.seed), None),
            ModelSetup::Offline(model) => (model, None),
            ModelSetup::Mtl { pretrained, momentum } => {
                let mtl = Mtl::new(pretrained.clone(), momentum);
                (Box::new(pretrained), Some(mtl))
            }
        };
        Tuner {
            cfg,
            measurer: Measurer::new(sim),
            psa,
            limits,
            tasks: Vec::new(),
            model,
            mtl,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        }
    }

    /// Overrides the time-cost constants (calibration experiments).
    pub fn set_time_model(&mut self, time: TimeModel) {
        let sim = self.measurer.simulator().clone();
        self.measurer = Measurer::with_time_model(sim, time);
    }

    /// Adds one tuning task.
    pub fn add_task(&mut self, workload: Workload, weight: u64) -> &mut Self {
        let id = self.tasks.len();
        self.tasks.push(TaskTuner::new(workload, id, weight));
        self
    }

    /// Adds every subgraph of a network as a weighted task.
    pub fn add_network(&mut self, net: &Network) -> &mut Self {
        for sg in net.subgraphs() {
            self.add_task(sg.workload.clone(), sg.weight);
        }
        self
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the campaign and returns the result.
    ///
    /// # Panics
    /// Panics if no tasks were added.
    pub fn run(&mut self) -> TuningResult {
        assert!(!self.tasks.is_empty(), "add at least one task before running");
        let mut curve = TuningCurve::new();

        // Warm-up: measure every task's canonical fallback so the weighted
        // end-to-end latency is finite from the first point (TVM measures
        // a default schedule for the same reason).
        for task in &mut self.tasks {
            let fallback = pruner_sketch::Program::fallback(&task.workload);
            let lat = self.measurer.measure(&fallback);
            task.record(fallback, lat);
        }
        curve.push(self.curve_point());

        for round in 0..self.cfg.rounds {
            let ti = self.pick_task();
            // Propose and measure.
            let progs = {
                let cfg = self.cfg;
                let params = ProposeParams {
                    space_size: cfg.space_size,
                    pool_size: cfg.target_pool,
                    epsilon: cfg.epsilon,
                    n: cfg.measure_per_round,
                    seed: cfg.seed,
                    round: round as u64,
                    threads: cfg.threads,
                };
                let task = &mut self.tasks[ti];
                task.propose(
                    self.model.as_ref(),
                    self.psa.as_ref(),
                    &mut self.measurer,
                    &self.limits,
                    &params,
                    &mut self.rng,
                )
            };
            let mut improved = false;
            for p in progs {
                let before = self.tasks[ti].best_latency();
                let lat = self.measurer.measure(&p);
                self.tasks[ti].record(p, lat);
                improved |= lat < before;
            }
            self.tasks[ti].finish_round(improved);

            // Update the model on the training window.
            let samples = self.training_window();
            if samples.len() >= 2 {
                match &mut self.mtl {
                    Some(mtl) => {
                        let target = mtl.round(&samples, self.cfg.mtl_epochs);
                        self.measurer.charge_training(samples.len(), self.cfg.mtl_epochs);
                        self.model = Box::new(target);
                    }
                    None => {
                        self.model.fit(&samples, self.cfg.train_epochs);
                        self.measurer.charge_training(samples.len(), self.cfg.train_epochs);
                    }
                }
            }

            curve.push(self.curve_point());
        }

        TuningResult {
            best_latency_s: self.weighted_best(),
            per_task_best: self
                .tasks
                .iter()
                .map(|t| (t.workload.clone(), t.best_latency()))
                .collect(),
            best_programs: self.tasks.iter().map(|t| t.best_program().cloned()).collect(),
            stats: self.measurer.stats(),
            curve,
        }
    }

    /// Weighted end-to-end latency of the incumbents.
    pub fn weighted_best(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight as f64 * t.best_latency()).sum()
    }

    fn curve_point(&self) -> CurvePoint {
        CurvePoint {
            trials: self.measurer.stats().trials,
            search_time_s: self.measurer.stats().total_s(),
            best_latency_s: self.weighted_best(),
        }
    }

    /// Gradient-style task selection: prefer heavy tasks that are still
    /// improving; never let a task starve forever.
    fn pick_task(&self) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, t) in self.tasks.iter().enumerate() {
            let staleness = t.rounds_since_improvement() as f64;
            let score = t.weight as f64 * t.best_latency() * (0.5 + 1.0 / (1.0 + staleness));
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn training_window(&self) -> Vec<Sample> {
        let mut samples: Vec<Sample> =
            self.tasks.iter().flat_map(|t| t.labeled_samples()).collect();
        if samples.len() > self.cfg.train_window {
            let skip = samples.len() - self.cfg.train_window;
            samples.drain(..skip);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_tuner(use_psa: bool, kind: ModelKind) -> Tuner {
        let cfg = TunerConfig { use_psa, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(kind));
        t.add_task(Workload::matmul(1, 512, 512, 512), 1);
        t
    }

    #[test]
    fn tuning_improves_over_fallback() {
        let mut t = quick_tuner(true, ModelKind::Pacm);
        let result = t.run();
        let first = result.curve.points().first().unwrap().best_latency_s;
        let last = result.best_latency_s;
        assert!(last < first, "tuning must improve: {first} -> {last}");
        assert!(result.stats.trials >= 40);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut t = quick_tuner(true, ModelKind::Ansor);
        let result = t.run();
        let lats: Vec<f64> =
            result.curve.points().iter().map(|p| p.best_latency_s).collect();
        assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_tuner(true, ModelKind::Pacm).run();
        let b = quick_tuner(true, ModelKind::Pacm).run();
        assert_eq!(a.best_latency_s, b.best_latency_s);
        assert_eq!(a.curve, b.curve);
    }

    #[test]
    fn network_tuning_covers_all_tasks() {
        let mut net = Network::new("mini");
        net.add(Workload::matmul(1, 256, 256, 256), 2);
        net.add(Workload::elementwise(pruner_ir::EwKind::Relu, 1 << 18), 1);
        net.add(Workload::reduction(1024, 256), 1);
        let cfg = TunerConfig { rounds: 6, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
        t.add_network(&net);
        assert_eq!(t.num_tasks(), 3);
        let result = t.run();
        assert_eq!(result.per_task_best.len(), 3);
        assert!(result.per_task_best.iter().all(|(_, l)| l.is_finite()));
    }

    #[test]
    fn mtl_setup_runs() {
        let pre = PacmModel::new(1);
        let cfg = TunerConfig::quick();
        let mut t = Tuner::new(
            GpuSpec::t4(),
            cfg,
            ModelSetup::Mtl { pretrained: pre, momentum: 0.99 },
        );
        t.add_task(Workload::matmul(1, 256, 256, 256), 1);
        let result = t.run();
        assert!(result.best_latency_s.is_finite());
        assert!(result.stats.train_time_s > 0.0);
    }

    #[test]
    fn psa_reduces_model_eval_cost_shape() {
        // With PSA the target pool is charged at the cheap PSA rate; the
        // expensive model only scores the pruned space.
        let with = quick_tuner(true, ModelKind::Pacm).run();
        let without = quick_tuner(false, ModelKind::Pacm).run();
        assert!(with.stats.psa_time_s > 0.0);
        assert_eq!(without.stats.psa_time_s, 0.0);
    }

    #[test]
    fn scheduler_prioritizes_heavy_slow_tasks() {
        // A heavy matmul and a trivial element-wise op: the scheduler must
        // spend most rounds on the matmul.
        let cfg = TunerConfig { rounds: 8, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Random));
        t.add_task(Workload::matmul(1, 1024, 1024, 1024), 1);
        t.add_task(Workload::elementwise(pruner_ir::EwKind::Relu, 1 << 10), 1);
        let result = t.run();
        // Big task must have improved beyond its fallback; the tiny task's
        // space is nearly exhausted after the warmup anyway.
        let (_, matmul_best) = &result.per_task_best[0];
        let fallback = pruner_gpu::Simulator::new(GpuSpec::t4())
            .latency(&pruner_sketch::Program::fallback(&Workload::matmul(1, 1024, 1024, 1024)));
        assert!(*matmul_best < fallback, "the heavy task was starved");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn run_without_tasks_panics() {
        Tuner::new(GpuSpec::t4(), TunerConfig::quick(), ModelSetup::Fresh(ModelKind::Random))
            .run();
    }
}
