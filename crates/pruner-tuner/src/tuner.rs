//! The tuning orchestrator: rounds, task scheduling, model updates.

use crate::checkpoint::{Checkpoint, MeasurerCheckpoint, TaskCheckpoint};
use crate::curve::{CurvePoint, TuningCurve};
use crate::measure::{MeasureOutcome, Measurer, RetryPolicy, SearchStats, TimeModel};
use crate::mtl::Mtl;
use crate::state::{CampaignPhase, CampaignStatus};
use crate::task::{ProposeParams, TaskTuner};
use pruner_cost::{CostModel, ModelKind, PacmModel, Sample};
use pruner_gpu::{Backend, FaultModel, GpuSpec, Simulator};
use pruner_ir::{Network, Workload};
use pruner_psa::{Psa, PsaConfig};
use pruner_store::{IoFaults, RecordOutcome, SharedStore, Store, TuningRecord};
use pruner_trace::{NoopRecorder, Record, Recorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Seed salt separating the fault stream from measurement noise and the
/// campaign RNG.
const FAULT_SEED_SALT: u64 = 0xFA17_FA17_FA17_FA17;

/// Seed salt deriving the retry-backoff jitter stream from the campaign
/// seed (distinct from the fault and candidate streams).
const JITTER_SEED_SALT: u64 = 0x0B4C_0FF0_0B4C_0FF0;

/// How the tuner obtains and updates its cost model.
#[allow(clippy::large_enum_variant)] // configuration object, built once per campaign
pub enum ModelSetup {
    /// Train a fresh model online from this campaign's measurements only
    /// (Ansor, Pruner w/o MTL).
    Fresh(ModelKind),
    /// Start from a pre-trained model and fine-tune it online without any
    /// stabilization (TensetMLP / TLP / Pruner offline mode).
    Offline(Box<dyn CostModel>),
    /// Momentum Transfer Learning around a pre-trained PaCM (full Pruner).
    Mtl {
        /// The cross-platform pre-trained Siamese model.
        pretrained: PacmModel,
        /// Momentum coefficient (paper: 0.99).
        momentum: f32,
    },
}

/// Campaign parameters. Defaults follow the paper's setup: 200 rounds × 10
/// measurements = 2,000 trials, target space 512, with a small ε share of
/// the original space retained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Tuning rounds.
    pub rounds: usize,
    /// Programs measured per round.
    pub measure_per_round: usize,
    /// Candidate sample-space size per round (`s` in §2.1).
    pub space_size: usize,
    /// Per-round sample-pool size the GA generates and PSA drafts from.
    pub target_pool: usize,
    /// Whether PSA pruning is enabled.
    pub use_psa: bool,
    /// Fraction of each round's sample space drawn from the *original*
    /// space to keep solutions beyond the pruned space reachable.
    pub epsilon: f64,
    /// Fine-tuning epochs per round for fresh/offline models.
    pub train_epochs: usize,
    /// Fine-tuning epochs per MTL round (the target restarts from the
    /// Siamese weights each round, so it needs enough steps to adapt).
    pub mtl_epochs: usize,
    /// Upper bound on the training window (most recent labeled samples).
    pub train_window: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the candidate-evaluation pipeline (generation,
    /// PSA drafting, feature extraction, cost-model inference). `1` runs
    /// the pipeline serially; any value produces bit-identical results.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Composite hardware-failure rate injected into the measurement path
    /// (0 disables fault injection entirely; the zero-fault campaign is
    /// bit-identical to a fault-unaware build).
    #[serde(default)]
    pub fault_rate: f64,
    /// Extra measurement attempts allowed after a failed attempt before
    /// the candidate is quarantined.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// Relative jitter on the retry backoff (`0.25` spreads each charged
    /// backoff uniformly within ±25% of its exponential base, drawn from
    /// a seeded stream so campaigns stay deterministic). `0.0` — the
    /// default — reproduces the exact historical backoff ledger.
    #[serde(default)]
    pub backoff_jitter: f64,
    /// Rounds between checkpoint writes (0 disables periodic writes;
    /// checkpoints are only written when a path is configured).
    #[serde(default = "default_checkpoint_every")]
    pub checkpoint_every: usize,
    /// Stop after this many rounds even if `rounds` is larger — the
    /// "kill" half of kill-and-resume testing.
    #[serde(default)]
    pub halt_after: Option<usize>,
}

/// Default worker count: the host's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Default retry budget after a failed measurement attempt.
fn default_max_retries() -> u32 {
    2
}

/// Default checkpoint cadence, in rounds.
fn default_checkpoint_every() -> usize {
    5
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            rounds: 200,
            measure_per_round: 10,
            space_size: 512,
            target_pool: 2048,
            use_psa: true,
            epsilon: 0.2,
            train_epochs: 2,
            mtl_epochs: 3,
            train_window: 1536,
            seed: 42,
            threads: default_threads(),
            fault_rate: 0.0,
            max_retries: default_max_retries(),
            backoff_jitter: 0.0,
            checkpoint_every: default_checkpoint_every(),
            halt_after: None,
        }
    }
}

impl TunerConfig {
    /// A scaled-down config for tests and quick demos.
    pub fn quick() -> TunerConfig {
        TunerConfig {
            rounds: 10,
            measure_per_round: 4,
            space_size: 64,
            target_pool: 256,
            ..TunerConfig::default()
        }
    }
}

/// Outcome of a tuning campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningResult {
    /// Best-so-far trajectory (weighted end-to-end latency for networks).
    pub curve: TuningCurve,
    /// The simulated-time ledger.
    pub stats: SearchStats,
    /// Final best weighted latency, seconds.
    pub best_latency_s: f64,
    /// Final best latency per task, in task order.
    pub per_task_best: Vec<(Workload, f64)>,
    /// The winning schedule per task, in task order (present whenever the
    /// task was measured at least once).
    pub best_programs: Vec<Option<pruner_sketch::Program>>,
}

/// Where a campaign's tuning records go: nowhere, its own [`Store`], or a
/// [`SharedStore`] handle multiplexed across concurrent campaigns (the
/// `pruner-serve` daemon). Every store touchpoint in the state machine
/// goes through this slot, so the two attachment modes behave
/// identically — the shared mode just takes the store's lock per
/// operation.
enum StoreSlot {
    /// No store attached.
    Detached,
    /// A store owned by this campaign alone.
    Owned(Store),
    /// A handle to a store shared with concurrent campaigns.
    Shared(SharedStore),
}

impl StoreSlot {
    fn attached(&self) -> bool {
        !matches!(self, StoreSlot::Detached)
    }

    /// Appends (deduplicating); `false` when detached or already stored.
    fn append(&mut self, record: TuningRecord) -> bool {
        match self {
            StoreSlot::Detached => false,
            StoreSlot::Owned(store) => store.append(record),
            StoreSlot::Shared(store) => store.append(record),
        }
    }

    /// Flushes the store; a no-op success when detached.
    fn flush(&self) -> std::io::Result<()> {
        match self {
            StoreSlot::Detached => Ok(()),
            StoreSlot::Owned(store) => store.flush(),
            StoreSlot::Shared(store) => store.flush(),
        }
    }

    /// Runs `f` against the store (under the lock for a shared one).
    fn with<R>(&self, f: impl FnOnce(&Store) -> R) -> Option<R> {
        match self {
            StoreSlot::Detached => None,
            StoreSlot::Owned(store) => Some(f(store)),
            StoreSlot::Shared(store) => Some(store.with(f)),
        }
    }
}

/// The tuning campaign driver.
///
/// Add tasks (or a whole network), then [`Tuner::run`]. Each round the
/// scheduler picks the most promising task, the task proposes candidates
/// from its (optionally PSA-pruned) space, the best-scored candidates are
/// measured, and the cost model is updated — by plain fitting, or by an MTL
/// round when configured.
///
/// The tuner is generic over the measurement [`Backend`]; the default is
/// the analytical [`Simulator`], and every constructor without an explicit
/// backend builds a simulator-backed campaign.
pub struct Tuner<B: Backend = Simulator> {
    cfg: TunerConfig,
    spec: GpuSpec,
    psa_cfg: PsaConfig,
    measurer: Measurer<B>,
    psa: Option<Psa>,
    limits: pruner_sketch::HardwareLimits,
    tasks: Vec<TaskTuner>,
    model: Box<dyn CostModel>,
    mtl: Option<Mtl>,
    rng: ChaCha8Rng,
    checkpoint_path: Option<PathBuf>,
    recorder: Box<dyn Recorder>,
    store: StoreSlot,
    warm_start: bool,
    /// Cache keys pre-seeded from the store this run — distinguishes a
    /// store hit (measurement avoided) from an ordinary cache hit.
    store_seeded: HashSet<String>,
    /// The campaign state machine's current phase — exactly what a
    /// checkpoint captures.
    phase: CampaignPhase,
    /// Best-so-far trajectory; grows one point per warm-up/round.
    curve: TuningCurve,
    /// Whether [`Tuner::start`] has opened the campaign span/records.
    started: bool,
    /// Whether this tuner was rebuilt from a checkpoint (emits a `resume`
    /// record and skips any phase already completed).
    resumed: bool,
    /// Optional seeded fault injector for *checkpoint* writes (the store
    /// carries its own); chaos harnesses only.
    io_faults: Option<IoFaults>,
}

impl Tuner {
    /// Creates a simulator-backed tuner for one platform.
    pub fn new(spec: GpuSpec, cfg: TunerConfig, setup: ModelSetup) -> Tuner {
        Self::with_psa_config(spec, cfg, setup, PsaConfig::default())
    }

    /// Creates a simulator-backed tuner with explicit PSA penalty toggles
    /// (ablations).
    pub fn with_psa_config(
        spec: GpuSpec,
        cfg: TunerConfig,
        setup: ModelSetup,
        psa_cfg: PsaConfig,
    ) -> Tuner {
        let sim = Simulator::new(spec.clone());
        Tuner::with_backend(spec, cfg, setup, psa_cfg, sim)
    }

    /// Restores a simulator-backed campaign from a checkpoint file. The
    /// resumed campaign continues from the first unfinished round and
    /// produces a byte-identical [`TuningResult`] to the uninterrupted run.
    pub fn resume<P: AsRef<Path>>(path: P) -> std::io::Result<Tuner> {
        Tuner::resume_backend(path)
    }

    /// Rebuilds a simulator-backed tuner from an in-memory checkpoint.
    ///
    /// # Panics
    /// Panics if the checkpoint was written by a different backend or its
    /// backend configuration is corrupt; [`Tuner::from_checkpoint_backend`]
    /// is the fallible form.
    pub fn from_checkpoint(ckpt: Checkpoint) -> Tuner {
        Tuner::from_checkpoint_backend(ckpt).expect("checkpoint backend mismatch")
    }
}

impl<B: Backend> Tuner<B> {
    /// Creates a tuner measuring through an explicit [`Backend`].
    ///
    /// `cfg.fault_rate` is installed through
    /// [`Backend::install_fault_model`]; backends that measure real
    /// hardware ignore it (their faults are real, not injected).
    pub fn with_backend(
        spec: GpuSpec,
        cfg: TunerConfig,
        setup: ModelSetup,
        psa_cfg: PsaConfig,
        mut backend: B,
    ) -> Tuner<B> {
        if cfg.fault_rate > 0.0 {
            backend.install_fault_model(Some(FaultModel::from_rate(
                cfg.seed ^ FAULT_SEED_SALT,
                cfg.fault_rate,
            )));
        }
        let limits = spec.limits();
        let psa = cfg.use_psa.then(|| Psa::with_config(spec.clone(), psa_cfg));
        let (model, mtl): (Box<dyn CostModel>, Option<Mtl>) = match setup {
            ModelSetup::Fresh(kind) => (kind.build(cfg.seed), None),
            ModelSetup::Offline(model) => (model, None),
            ModelSetup::Mtl { pretrained, momentum } => {
                let mtl = Mtl::new(pretrained.clone(), momentum);
                (Box::new(pretrained), Some(mtl))
            }
        };
        let mut measurer = Measurer::new(backend);
        measurer.set_retry_policy(RetryPolicy {
            max_retries: cfg.max_retries,
            backoff_jitter: cfg.backoff_jitter,
            jitter_seed: cfg.seed ^ JITTER_SEED_SALT,
            ..RetryPolicy::default()
        });
        Tuner {
            cfg,
            spec,
            psa_cfg,
            measurer,
            psa,
            limits,
            tasks: Vec::new(),
            model,
            mtl,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            checkpoint_path: None,
            recorder: Box::new(NoopRecorder),
            store: StoreSlot::Detached,
            warm_start: false,
            store_seeded: HashSet::new(),
            phase: CampaignPhase::Init,
            curve: TuningCurve::new(),
            started: false,
            resumed: false,
            io_faults: None,
        }
    }

    /// Overrides the time-cost constants (calibration experiments),
    /// preserving the measurement cache and the simulated-time ledger.
    pub fn set_time_model(&mut self, time: TimeModel) {
        self.measurer.set_time_model(time);
    }

    /// Enables periodic checkpointing to `path` (every
    /// [`TunerConfig::checkpoint_every`] rounds, written atomically).
    pub fn set_checkpoint_path<P: Into<PathBuf>>(&mut self, path: P) {
        self.checkpoint_path = Some(path.into());
    }

    /// Restores a campaign from a checkpoint file, rebuilding this
    /// backend type from the checkpoint's embedded backend configuration.
    /// Fails if the checkpoint was written by a different backend.
    pub fn resume_backend<P: AsRef<Path>>(path: P) -> std::io::Result<Tuner<B>> {
        let ckpt = Checkpoint::load(path.as_ref())?;
        Tuner::from_checkpoint_backend(ckpt)
    }

    /// Rebuilds a tuner from an in-memory checkpoint. Fails if the
    /// checkpoint's backend tag does not match `B` or its backend
    /// configuration does not parse.
    pub fn from_checkpoint_backend(ckpt: Checkpoint) -> std::io::Result<Tuner<B>> {
        if ckpt.measurer.backend_tag != B::TAG {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "checkpoint was written by backend `{}`, not `{}`",
                    ckpt.measurer.backend_tag,
                    B::TAG
                ),
            ));
        }
        let backend = B::from_checkpoint_config(&ckpt.spec, &ckpt.measurer.backend_cfg)?;
        let cfg = ckpt.config;
        let limits = ckpt.spec.limits();
        let psa =
            cfg.use_psa.then(|| Psa::with_config(ckpt.spec.clone(), ckpt.psa_cfg));
        let measurer = Measurer::from_parts(
            backend,
            ckpt.measurer.time,
            ckpt.measurer.policy,
            ckpt.measurer.cache,
            ckpt.measurer.stats,
            ckpt.measurer.attempts,
        );
        let tasks = ckpt
            .tasks
            .into_iter()
            .map(|t| {
                TaskTuner::from_checkpoint(
                    t.workload,
                    t.task_id,
                    t.weight,
                    t.measured,
                    t.quarantined,
                    t.quarantined_fps,
                    t.rounds_since_improvement,
                )
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        rng.set_word_offset(ckpt.rng_word_offset);
        Ok(Tuner {
            cfg,
            spec: ckpt.spec,
            psa_cfg: ckpt.psa_cfg,
            measurer,
            psa,
            limits,
            tasks,
            model: ckpt.model.into_model(),
            mtl: ckpt.mtl,
            rng,
            checkpoint_path: None,
            recorder: Box::new(NoopRecorder),
            store: StoreSlot::Detached,
            warm_start: false,
            store_seeded: HashSet::new(),
            phase: ckpt.phase,
            curve: ckpt.curve,
            started: false,
            resumed: true,
            io_faults: None,
        })
    }

    /// Installs a [`Recorder`] for the campaign (e.g. a cloned
    /// [`pruner_trace::TraceHandle`]). The recorder only *observes*: a
    /// traced campaign produces results, checkpoints and goldens
    /// byte-identical to an untraced one. The default is the
    /// [`NoopRecorder`], which costs nothing.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Attaches a persistent tuning-record store (see `pruner-store` and
    /// `docs/STORE_FORMAT.md`). Every fresh measurement verdict — success
    /// or quarantine — is appended during the run and flushed atomically
    /// at every checkpoint write and at campaign end.
    ///
    /// With `warm_start` set, a campaign starting from round 0 first
    /// *replays* the store's matching records (same platform fingerprint,
    /// same task workloads): the measurement cache, elite pools and
    /// quarantine sets are pre-seeded and the cost model is pre-trained
    /// from the logged successes, all free of simulated search time.
    /// Without `warm_start` the store is record-only and the campaign is
    /// bit-identical to a store-less run. A *resumed* campaign never
    /// replays regardless of the flag — its checkpoint already contains
    /// every effect of the measurements it made.
    pub fn set_store(&mut self, store: Store, warm_start: bool) {
        self.store = StoreSlot::Owned(store);
        self.warm_start = warm_start;
    }

    /// Attaches a [`SharedStore`] handle instead of an owned store:
    /// several concurrent campaigns (the `pruner-serve` tenants) append
    /// to one log, deduplicated under its lock. Identical semantics to
    /// [`Tuner::set_store`] otherwise — including `warm_start` replay,
    /// which snapshots the matching records under the lock.
    pub fn set_shared_store(&mut self, store: SharedStore, warm_start: bool) {
        self.store = StoreSlot::Shared(store);
        self.warm_start = warm_start;
    }

    /// The attached *owned* record store, if any (e.g. to report how many
    /// fresh records the campaign contributed). A shared store has no
    /// single owner and is observed through its own handle instead.
    pub fn store(&self) -> Option<&Store> {
        match &self.store {
            StoreSlot::Owned(store) => Some(store),
            _ => None,
        }
    }

    /// The campaign's Momentum-Transfer-Learning state, when configured
    /// with [`ModelSetup::Mtl`] — read it after the run to carry the
    /// evolved Siamese weights to the next platform (the cross-hardware
    /// fleet does exactly this; see `crate::fleet` and `docs/FLEET.md`).
    pub fn mtl(&self) -> Option<&Mtl> {
        self.mtl.as_ref()
    }

    /// Snapshots the complete campaign state at `phase`.
    ///
    /// # Panics
    /// Panics if the cost model does not support snapshotting (a custom
    /// [`ModelSetup::Offline`] model without
    /// [`CostModel::snapshot`]).
    fn make_checkpoint(&self, phase: CampaignPhase) -> Checkpoint {
        let next_round = phase.round().min(self.cfg.rounds);
        Checkpoint {
            version: Checkpoint::VERSION,
            // `halt_after` models the kill in kill-and-resume testing; a
            // resumed campaign runs to completion.
            config: TunerConfig { halt_after: None, ..self.cfg },
            spec: self.spec.clone(),
            psa_cfg: self.psa_cfg,
            next_round,
            phase,
            curve: self.curve.clone(),
            tasks: self
                .tasks
                .iter()
                .map(|t| TaskCheckpoint {
                    workload: t.workload.clone(),
                    task_id: t.task_id,
                    weight: t.weight,
                    measured: t.measured_log().to_vec(),
                    quarantined: t.quarantined_keys(),
                    quarantined_fps: t.quarantined_fps(),
                    rounds_since_improvement: t.rounds_since_improvement(),
                })
                .collect(),
            measurer: MeasurerCheckpoint {
                time: *self.measurer.time_model(),
                policy: *self.measurer.retry_policy(),
                backend_tag: B::TAG.to_string(),
                backend_cfg: self.measurer.backend().checkpoint_config(),
                cache: self.measurer.cache_entries(),
                stats: self.measurer.stats(),
                attempts: self.measurer.attempts(),
            },
            model: self
                .model
                .snapshot()
                .expect("checkpointing requires a snapshot-capable cost model"),
            mtl: self.mtl.clone(),
            rng_word_offset: self.rng.word_offset(),
        }
    }

    /// Adds one tuning task.
    pub fn add_task(&mut self, workload: Workload, weight: u64) -> &mut Self {
        let id = self.tasks.len();
        self.tasks.push(TaskTuner::new(workload, id, weight));
        self
    }

    /// Adds every subgraph of a network as a weighted task.
    pub fn add_network(&mut self, net: &Network) -> &mut Self {
        for sg in net.subgraphs() {
            self.add_task(sg.workload.clone(), sg.weight);
        }
        self
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the campaign to completion and returns the result: exactly
    /// [`Tuner::start`] followed by [`Tuner::step`] until the state
    /// machine reports done.
    ///
    /// Failed measurements (injected hardware faults that survive the
    /// retry budget) quarantine the candidate: it is excluded from the
    /// incumbent, the training window, and all future proposals, so the
    /// curve stays monotone and an all-fail round simply carries the
    /// incumbent forward.
    ///
    /// # Panics
    /// Panics if no tasks were added, or if a configured checkpoint or
    /// store cannot be written (a supervisor catches the same conditions
    /// as typed faults via [`CampaignStatus::Failed`] instead).
    pub fn run(&mut self) -> TuningResult {
        assert!(!self.tasks.is_empty(), "add at least one task before running");
        self.start();
        loop {
            match self.step() {
                CampaignStatus::Running => {}
                CampaignStatus::Done => return self.result(),
                CampaignStatus::Failed(reason) => panic!("{reason}"),
            }
        }
    }

    /// Opens the campaign: emits the `campaign` span, the
    /// `campaign_begin` record and — for a tuner rebuilt from a
    /// checkpoint — the `resume` record, re-opening any span the parked
    /// phase was inside. Idempotent; [`Tuner::step`] requires it.
    ///
    /// # Panics
    /// Panics if no tasks were added.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        assert!(!self.tasks.is_empty(), "add at least one task before running");
        self.started = true;
        self.recorder.span_begin("campaign");
        if self.recorder.enabled() {
            let mut begin = Record::new("campaign_begin")
                .u64("tasks", self.tasks.len() as u64)
                .u64("rounds", self.cfg.rounds as u64)
                .u64("seed", self.cfg.seed)
                .u64("space_size", self.cfg.space_size as u64)
                .u64("measure_per_round", self.cfg.measure_per_round as u64)
                .bool("use_psa", self.cfg.use_psa)
                .f64("fault_rate", self.cfg.fault_rate);
            // Simulator campaigns keep the historical record shape (the
            // trace golden pins it byte for byte); other backends announce
            // themselves.
            if B::TAG != "sim" {
                begin = begin.str("backend", B::TAG);
            }
            self.recorder.emit(begin);
            if self.resumed {
                self.recorder
                    .emit(Record::new("resume").u64("next_round", self.phase.round() as u64));
            }
        }
        // A campaign parked mid-round resumes *inside* spans its original
        // incarnation opened; re-open them so every span_end pairs up.
        match &self.phase {
            CampaignPhase::Measuring { .. } => {
                self.recorder.span_begin("round");
                self.recorder.span_begin("measure");
            }
            CampaignPhase::Training { .. } => {
                self.recorder.span_begin("round");
            }
            _ => {}
        }
    }

    /// Advances the campaign by exactly one state-machine transition
    /// (one phase hand-off; in [`CampaignPhase::Measuring`], one single
    /// measurement) and reports whether more work remains. The sequence
    /// of measurements, RNG draws, trace records and simulated-time
    /// charges across steps is identical to the historical monolithic
    /// loop — goldens pinned before the state machine still hold.
    ///
    /// # Panics
    /// Panics if [`Tuner::start`] has not run.
    pub fn step(&mut self) -> CampaignStatus {
        assert!(self.started, "call start() before step()");
        // The in-flight phase owns round state (e.g. the pending
        // programs), so take it by value; `advance` returns its successor.
        let phase = std::mem::replace(&mut self.phase, CampaignPhase::Done);
        self.phase = self.advance(phase);
        match &self.phase {
            CampaignPhase::Done => CampaignStatus::Done,
            CampaignPhase::Failed { reason } => CampaignStatus::Failed(reason.clone()),
            _ => CampaignStatus::Running,
        }
    }

    /// One phase transition of the campaign state machine.
    fn advance(&mut self, phase: CampaignPhase) -> CampaignPhase {
        match phase {
            CampaignPhase::Init => {
                if self.warm_start && self.store.attached() {
                    self.replay_store();
                }
                // Warm-up: measure every task's canonical fallback so the
                // weighted end-to-end latency is finite from the first point
                // (TVM measures a default schedule for the same reason). The
                // fallback is measured *trusted* — a real campaign hand-checks
                // its seed schedule — so every task starts with a finite
                // incumbent even under heavy fault injection.
                self.recorder.span_begin("warmup");
                for ti in 0..self.tasks.len() {
                    let fallback = pruner_sketch::Program::fallback(&self.tasks[ti].workload);
                    let lat = self.measurer.measure_trusted(&fallback);
                    // A store replay may already have recorded this fallback
                    // (then `measure_trusted` was a free cache hit); re-record
                    // only if the task is still without a finite incumbent —
                    // e.g. the store held a quarantine verdict for it, which
                    // the trusted warm-up measurement supersedes.
                    let task = &mut self.tasks[ti];
                    if !task.knows(&fallback) || !task.best_latency().is_finite() {
                        task.record(fallback.clone(), lat);
                    }
                    self.record_to_store(&fallback);
                }
                self.recorder.span_end("warmup");
                self.curve.push(self.curve_point());
                CampaignPhase::Proposing { round: 0 }
            }
            CampaignPhase::Proposing { round } => {
                if round >= self.cfg.rounds {
                    return self.finish();
                }
                self.recorder.span_begin("round");
                let ti = self.pick_task();
                let (progs, funnel) = {
                    let cfg = self.cfg;
                    let params = ProposeParams {
                        space_size: cfg.space_size,
                        pool_size: cfg.target_pool,
                        epsilon: cfg.epsilon,
                        n: cfg.measure_per_round,
                        seed: cfg.seed,
                        round: round as u64,
                        threads: cfg.threads,
                    };
                    let task = &mut self.tasks[ti];
                    task.propose_traced(
                        self.model.as_ref(),
                        self.psa.as_ref(),
                        &mut self.measurer,
                        &self.limits,
                        &params,
                        &mut self.rng,
                        self.recorder.as_mut(),
                    )
                };
                self.recorder.span_begin("measure");
                CampaignPhase::Measuring {
                    round,
                    task: ti,
                    pending: progs,
                    next: 0,
                    measured: 0,
                    failed: 0,
                    improved: false,
                    funnel,
                }
            }
            CampaignPhase::Measuring {
                round,
                task,
                pending,
                mut next,
                mut measured,
                mut failed,
                mut improved,
                funnel,
            } => {
                if next < pending.len() {
                    let p = &pending[next];
                    let before = self.tasks[task].best_latency();
                    let outcome = self.measurer.measure_rec(p, self.recorder.as_mut());
                    self.record_to_store(p);
                    match outcome {
                        MeasureOutcome::Success { latency_s, .. } => {
                            self.tasks[task].record(p.clone(), latency_s);
                            improved |= latency_s < before;
                            measured += 1;
                        }
                        MeasureOutcome::Failure { .. } => {
                            // No usable timing: never re-propose, never train
                            // on it, keep the incumbent.
                            self.tasks[task].quarantine(p);
                            failed += 1;
                        }
                    }
                    next += 1;
                    CampaignPhase::Measuring {
                        round,
                        task,
                        pending,
                        next,
                        measured,
                        failed,
                        improved,
                        funnel,
                    }
                } else {
                    self.recorder.span_end("measure");
                    self.tasks[task].finish_round(improved);
                    CampaignPhase::Training { round, task, measured, failed, funnel }
                }
            }
            CampaignPhase::Training { round, task, measured, failed, funnel } => {
                // Update the model on the training window.
                let samples = self.training_window();
                if samples.len() >= 2 {
                    match &mut self.mtl {
                        Some(mtl) => {
                            let target = mtl.round_traced(
                                &samples,
                                self.cfg.mtl_epochs,
                                self.cfg.threads,
                                self.recorder.as_mut(),
                            );
                            self.measurer.charge_training(samples.len(), self.cfg.mtl_epochs);
                            self.model = Box::new(target);
                        }
                        None => {
                            self.model.fit_batch_traced(
                                &samples,
                                self.cfg.train_epochs,
                                self.cfg.threads,
                                self.recorder.as_mut(),
                            );
                            self.measurer.charge_training(samples.len(), self.cfg.train_epochs);
                        }
                    }
                    if self.recorder.enabled() {
                        let epochs = if self.mtl.is_some() {
                            self.cfg.mtl_epochs
                        } else {
                            self.cfg.train_epochs
                        };
                        self.recorder.emit(
                            Record::new("train")
                                .u64("round", round as u64)
                                .u64("samples", samples.len() as u64)
                                .u64("epochs", epochs as u64)
                                .bool("mtl", self.mtl.is_some()),
                        );
                    }
                }

                self.curve.push(self.curve_point());
                if self.recorder.enabled() {
                    // The per-round funnel: how many candidates survived each
                    // draft-then-verify stage, and where the incumbent landed.
                    // Every field is deterministic (identical across thread
                    // counts and traced/untraced runs).
                    let mut record = Record::new("round")
                        .u64("round", round as u64)
                        .u64("task", task as u64)
                        .u64("generated", funnel.generated as u64)
                        .u64("deduped", funnel.deduped as u64);
                    if let Some(survivors) = funnel.psa_survivors {
                        record = record
                            .u64("psa_survivors", survivors as u64)
                            .u64("eps_extras", funnel.eps_extras as u64);
                    }
                    record = record
                        .u64("predicted", funnel.predicted as u64)
                        .u64("proposed", funnel.proposed as u64)
                        .u64("measured", measured)
                        .u64("failed", failed)
                        .f64("best_latency_s", self.weighted_best())
                        .f64("sim_total_s", self.measurer.stats().total_s());
                    self.recorder.emit(record);
                }
                self.recorder.span_end("round");
                CampaignPhase::CheckpointDue { round: round + 1 }
            }
            CampaignPhase::CheckpointDue { round: completed } => {
                if let Some(path) = self.checkpoint_path.clone() {
                    if self.cfg.checkpoint_every > 0 && completed % self.cfg.checkpoint_every == 0
                    {
                        // Flush the store *before* saving the checkpoint:
                        // once a checkpoint lands, the measurements behind
                        // it live only in its cache and are never re-run,
                        // so a store flush that failed after the save would
                        // lose those records forever. Failing before the
                        // save restarts from the previous checkpoint and
                        // re-measures (and re-appends) the interval.
                        if let Err(e) = self.store.flush() {
                            return CampaignPhase::Failed {
                                reason: format!("store write failed: {e}"),
                            };
                        }
                        // A cadence checkpoint parks the campaign at the next
                        // round boundary.
                        let ckpt =
                            self.make_checkpoint(CampaignPhase::Proposing { round: completed });
                        if let Err(e) = ckpt.save_with(&path, self.io_faults.as_ref()) {
                            return CampaignPhase::Failed {
                                reason: format!("checkpoint write failed: {e}"),
                            };
                        }
                        if self.recorder.enabled() {
                            self.recorder
                                .emit(Record::new("checkpoint").u64("round", completed as u64));
                        }
                    }
                }
                if self.cfg.halt_after.is_some_and(|halt| completed >= halt) {
                    return self.finish();
                }
                CampaignPhase::Proposing { round: completed }
            }
            CampaignPhase::Done => CampaignPhase::Done,
            CampaignPhase::Failed { reason } => CampaignPhase::Failed { reason },
        }
    }

    /// Closes the campaign: end-of-campaign records, final store flush,
    /// campaign span end.
    fn finish(&mut self) -> CampaignPhase {
        if self.recorder.enabled() {
            let stats = self.measurer.stats();
            self.recorder.emit(
                Record::new("campaign_end")
                    .u64("trials", stats.trials)
                    .u64("quarantined", stats.quarantined)
                    .f64("best_latency_s", self.weighted_best())
                    .f64("measure_time_s", stats.measure_time_s)
                    .f64("model_time_s", stats.model_time_s)
                    .f64("psa_time_s", stats.psa_time_s)
                    .f64("train_time_s", stats.train_time_s)
                    .f64("evolve_time_s", stats.evolve_time_s)
                    .f64("retry_backoff_s", stats.retry_backoff_s)
                    .f64("fault_time_s", stats.fault_time_s)
                    .f64("sim_total_s", stats.total_s()),
            );
        }
        if self.store.attached() {
            if let Err(e) = self.store.flush() {
                return CampaignPhase::Failed { reason: format!("store write failed: {e}") };
            }
            if self.recorder.enabled() {
                let (records, appended) =
                    self.store.with(|s| (s.len(), s.appended())).unwrap_or((0, 0));
                self.recorder.emit(
                    Record::new("store_flush")
                        .u64("records", records as u64)
                        .u64("appended", appended as u64),
                );
            }
        }
        self.recorder.span_end("campaign");
        CampaignPhase::Done
    }

    /// The campaign outcome assembled from the current state: final after
    /// [`CampaignStatus::Done`], a live snapshot mid-campaign (e.g. when a
    /// supervisor parks the campaign on a deadline).
    pub fn result(&self) -> TuningResult {
        TuningResult {
            best_latency_s: self.weighted_best(),
            per_task_best: self
                .tasks
                .iter()
                .map(|t| (t.workload.clone(), t.best_latency()))
                .collect(),
            best_programs: self.tasks.iter().map(|t| t.best_program().cloned()).collect(),
            stats: self.measurer.stats(),
            curve: self.curve.clone(),
        }
    }

    /// The campaign's current phase.
    pub fn phase(&self) -> &CampaignPhase {
        &self.phase
    }

    /// The simulated-time ledger so far (a supervisor polls this for
    /// measurement-budget deadlines).
    pub fn stats(&self) -> SearchStats {
        self.measurer.stats()
    }

    /// Snapshots the campaign exactly where it stands — including
    /// mid-round — as a [`Checkpoint`]. Resuming the parked checkpoint
    /// continues byte-identically to a campaign that never stopped.
    ///
    /// # Panics
    /// Panics if the cost model does not support snapshotting.
    pub fn park(&self) -> Checkpoint {
        self.make_checkpoint(self.phase.clone())
    }

    /// [`Tuner::park`] straight to disk: saves the checkpoint (through
    /// the optional checkpoint fault injector) and flushes the store so
    /// no measurement record is lost at the park point.
    pub fn park_to(&self, path: &Path) -> std::io::Result<()> {
        // Store first, checkpoint second — same ordering as the cadence
        // path, so no published checkpoint ever references measurements
        // the store has not durably recorded.
        self.store.flush()?;
        self.park().save_with(path, self.io_faults.as_ref())
    }

    /// Installs a seeded fault injector on *checkpoint* writes (cadence
    /// checkpoints and [`Tuner::park_to`]); the chaos harness uses this
    /// to prove a failed checkpoint write surfaces as
    /// [`CampaignStatus::Failed`] without corrupting the previous
    /// checkpoint. Store writes carry their own injector
    /// ([`Store::set_io_faults`]).
    pub fn set_checkpoint_io_faults(&mut self, faults: Option<IoFaults>) {
        self.io_faults = faults;
    }

    /// Replays the store's matching records into this campaign: pre-seeds
    /// the measurement cache (free cache hits — fewer live measurements),
    /// the elite pools and quarantine sets, then pre-trains the cost model
    /// from the logged successes. No simulated search time is charged: the
    /// replayed knowledge was paid for by an earlier campaign. Emits one
    /// `store_replay` trace record summarizing what was used and skipped.
    fn replay_store(&mut self) {
        let spec_fp = self.spec.fingerprint();
        let by_workload: HashMap<String, usize> =
            self.tasks.iter().enumerate().map(|(i, t)| (t.workload.key(), i)).collect();
        let workloads: HashSet<String> = by_workload.keys().cloned().collect();
        // Snapshot the matching records out of the store (under the lock
        // for a shared one — replay must not hold it across model
        // pretraining).
        let Some((records, spec_mismatches, workload_mismatches, file)) =
            self.store.with(|store| {
                let replay = store.replay_backend(B::TAG, &spec_fp, &workloads);
                (
                    replay.records.into_iter().cloned().collect::<Vec<TuningRecord>>(),
                    replay.spec_mismatches,
                    replay.workload_mismatches,
                    store.replay_stats(),
                )
            })
        else {
            return;
        };
        let matched = records.len();
        let mut preseeded = 0u64;
        let mut samples: Vec<Sample> = Vec::new();
        for record in &records {
            let ti = by_workload[&record.workload_fp];
            let key = record.program.dedup_key();
            // A verdict already in the cache (from a checkpoint) wins over
            // the stored one.
            if !self.measurer.preseed(key.clone(), record.outcome.into()) {
                continue;
            }
            preseeded += 1;
            self.store_seeded.insert(key);
            match record.outcome {
                RecordOutcome::Success { latency_s, .. } => {
                    samples.push(Sample::labeled(&record.program, latency_s, ti));
                    self.tasks[ti].record(record.program.clone(), latency_s);
                }
                RecordOutcome::Failure { .. } => {
                    self.tasks[ti].quarantine(&record.program);
                }
            }
        }
        let pretrained = samples.len() >= 2;
        if pretrained {
            self.model.pretrain(
                &samples,
                self.cfg.train_epochs,
                self.cfg.threads,
                self.recorder.as_mut(),
            );
        }
        if self.recorder.enabled() {
            self.recorder.emit(
                Record::new("store_replay")
                    .u64("loaded", file.loaded as u64)
                    .u64("skipped_lines", file.skipped() as u64)
                    .u64("matched", matched as u64)
                    .u64("spec_mismatches", spec_mismatches as u64)
                    .u64("workload_mismatches", workload_mismatches as u64)
                    .u64("preseeded", preseeded)
                    .u64("pretrain_samples", if pretrained { samples.len() as u64 } else { 0 }),
            );
            self.recorder.counter("store.preseeded", preseeded);
        }
    }

    /// Contributes one just-measured program's verdict to the attached
    /// store (no-op without one). Counts a `store.hits` funnel counter
    /// when the verdict was replayed from the store instead of measured
    /// live, and `store.appended` when a genuinely fresh record is added;
    /// the store itself dedupes, so re-encounters are free.
    fn record_to_store(&mut self, prog: &pruner_sketch::Program) {
        if !self.store.attached() {
            return;
        }
        let key = prog.dedup_key();
        if self.store_seeded.contains(&key) {
            self.recorder.counter("store.hits", 1);
            return;
        }
        let Some(outcome) = self.measurer.cached_outcome(prog) else { return };
        let record = TuningRecord::with_backend(&self.spec, B::TAG, prog.clone(), outcome.into());
        if self.store.append(record) {
            self.recorder.counter("store.appended", 1);
        }
    }

    /// Weighted end-to-end latency of the incumbents.
    pub fn weighted_best(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight as f64 * t.best_latency()).sum()
    }

    fn curve_point(&self) -> CurvePoint {
        CurvePoint {
            trials: self.measurer.stats().trials,
            search_time_s: self.measurer.stats().total_s(),
            best_latency_s: self.weighted_best(),
        }
    }

    /// Gradient-style task selection: prefer heavy tasks that are still
    /// improving; never let a task starve forever.
    fn pick_task(&self) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, t) in self.tasks.iter().enumerate() {
            let staleness = t.rounds_since_improvement() as f64;
            let score = t.weight as f64 * t.best_latency() * (0.5 + 1.0 / (1.0 + staleness));
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn training_window(&self) -> Vec<Sample> {
        let mut samples: Vec<Sample> =
            self.tasks.iter().flat_map(|t| t.labeled_samples()).collect();
        if samples.len() > self.cfg.train_window {
            let skip = samples.len() - self.cfg.train_window;
            samples.drain(..skip);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_tuner(use_psa: bool, kind: ModelKind) -> Tuner {
        let cfg = TunerConfig { use_psa, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(kind));
        t.add_task(Workload::matmul(1, 512, 512, 512), 1);
        t
    }

    #[test]
    fn tuning_improves_over_fallback() {
        let mut t = quick_tuner(true, ModelKind::Pacm);
        let result = t.run();
        let first = result.curve.points().first().unwrap().best_latency_s;
        let last = result.best_latency_s;
        assert!(last < first, "tuning must improve: {first} -> {last}");
        assert!(result.stats.trials >= 40);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut t = quick_tuner(true, ModelKind::Ansor);
        let result = t.run();
        let lats: Vec<f64> =
            result.curve.points().iter().map(|p| p.best_latency_s).collect();
        assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_tuner(true, ModelKind::Pacm).run();
        let b = quick_tuner(true, ModelKind::Pacm).run();
        assert_eq!(a.best_latency_s, b.best_latency_s);
        assert_eq!(a.curve, b.curve);
    }

    #[test]
    fn network_tuning_covers_all_tasks() {
        let mut net = Network::new("mini");
        net.add(Workload::matmul(1, 256, 256, 256), 2);
        net.add(Workload::elementwise(pruner_ir::EwKind::Relu, 1 << 18), 1);
        net.add(Workload::reduction(1024, 256), 1);
        let cfg = TunerConfig { rounds: 6, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
        t.add_network(&net);
        assert_eq!(t.num_tasks(), 3);
        let result = t.run();
        assert_eq!(result.per_task_best.len(), 3);
        assert!(result.per_task_best.iter().all(|(_, l)| l.is_finite()));
    }

    #[test]
    fn mtl_setup_runs() {
        let pre = PacmModel::new(1);
        let cfg = TunerConfig::quick();
        let mut t = Tuner::new(
            GpuSpec::t4(),
            cfg,
            ModelSetup::Mtl { pretrained: pre, momentum: 0.99 },
        );
        t.add_task(Workload::matmul(1, 256, 256, 256), 1);
        let result = t.run();
        assert!(result.best_latency_s.is_finite());
        assert!(result.stats.train_time_s > 0.0);
    }

    #[test]
    fn psa_reduces_model_eval_cost_shape() {
        // With PSA the target pool is charged at the cheap PSA rate; the
        // expensive model only scores the pruned space.
        let with = quick_tuner(true, ModelKind::Pacm).run();
        let without = quick_tuner(false, ModelKind::Pacm).run();
        assert!(with.stats.psa_time_s > 0.0);
        assert_eq!(without.stats.psa_time_s, 0.0);
    }

    #[test]
    fn scheduler_prioritizes_heavy_slow_tasks() {
        // A heavy matmul and a trivial element-wise op: the scheduler must
        // spend most rounds on the matmul.
        let cfg = TunerConfig { rounds: 8, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Random));
        t.add_task(Workload::matmul(1, 1024, 1024, 1024), 1);
        t.add_task(Workload::elementwise(pruner_ir::EwKind::Relu, 1 << 10), 1);
        let result = t.run();
        // Big task must have improved beyond its fallback; the tiny task's
        // space is nearly exhausted after the warmup anyway.
        let (_, matmul_best) = &result.per_task_best[0];
        let fallback = pruner_gpu::Simulator::new(GpuSpec::t4())
            .latency(&pruner_sketch::Program::fallback(&Workload::matmul(1, 1024, 1024, 1024)));
        assert!(*matmul_best < fallback, "the heavy task was starved");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn run_without_tasks_panics() {
        Tuner::new(GpuSpec::t4(), TunerConfig::quick(), ModelSetup::Fresh(ModelKind::Random))
            .run();
    }

    #[test]
    fn fault_injection_terminates_and_stays_monotone() {
        let cfg = TunerConfig { fault_rate: 0.25, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
        t.add_task(Workload::matmul(1, 512, 512, 512), 1);
        let result = t.run();
        let lats: Vec<f64> =
            result.curve.points().iter().map(|p| p.best_latency_s).collect();
        assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12), "curve must stay monotone");
        assert!(result.best_latency_s.is_finite(), "warm-up keeps the incumbent finite");
        assert!(result.stats.failures > 0, "rate 0.25 must inject failures");
        assert!(result.stats.fault_time_s > 0.0, "failures must cost simulated time");
    }

    #[test]
    fn zero_fault_rate_is_identical_to_fault_unaware_campaign() {
        let base = quick_tuner(true, ModelKind::Pacm).run();
        let cfg = TunerConfig { fault_rate: 0.0, ..TunerConfig::quick() };
        let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
        t.add_task(Workload::matmul(1, 512, 512, 512), 1);
        let zero = t.run();
        assert_eq!(base.curve, zero.curve);
        assert_eq!(base.stats, zero.stats);
    }

    #[test]
    fn traced_campaign_is_bit_identical_and_funnel_covers_every_round() {
        let plain = quick_tuner(true, ModelKind::Pacm).run();
        let trace = pruner_trace::TraceHandle::new();
        let mut t = quick_tuner(true, ModelKind::Pacm);
        t.set_recorder(Box::new(trace.clone()));
        let traced = t.run();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "the recorder must only observe, never perturb"
        );
        let records = trace.records();
        let rounds: Vec<&pruner_trace::Record> =
            records.iter().filter(|r| r.kind() == "round").collect();
        assert_eq!(
            rounds.len(),
            traced.curve.points().len() - 1,
            "one funnel record per tuning round (warm-up adds the extra curve point)"
        );
        for (i, r) in rounds.iter().enumerate() {
            let get = |k: &str| r.get(k).and_then(pruner_trace::Value::as_u64).unwrap();
            assert_eq!(get("round"), i as u64);
            assert!(get("generated") >= get("deduped"));
            assert!(get("psa_survivors") <= get("deduped"), "PSA campaign records survivors");
            assert_eq!(get("predicted"), get("psa_survivors") + get("eps_extras"));
            assert_eq!(get("measured") + get("failed"), get("proposed"));
        }
        let last = rounds.last().unwrap();
        assert_eq!(
            last.get("best_latency_s").and_then(pruner_trace::Value::as_f64),
            Some(traced.best_latency_s),
            "the final funnel record carries the campaign's best latency"
        );
        assert_eq!(records.iter().filter(|r| r.kind() == "campaign_begin").count(), 1);
        assert_eq!(records.iter().filter(|r| r.kind() == "campaign_end").count(), 1);
        assert_eq!(records.iter().filter(|r| r.kind() == "train").count(), rounds.len());
        let end = records.iter().find(|r| r.kind() == "campaign_end").unwrap();
        assert_eq!(
            end.get("sim_total_s").and_then(pruner_trace::Value::as_f64),
            Some(traced.stats.total_s()),
            "the campaign_end ledger must reconcile with SearchStats"
        );
        // Wall timings exist only because spans measured them.
        assert!(traced.stats.pipeline_wall_s() > 0.0);
        assert_eq!(plain.stats.pipeline_wall_s(), 0.0);
    }

    fn store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pruner-tuner-store-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_only_store_is_bit_identical_and_captures_every_verdict() {
        let dir = store_dir("recordonly");
        let path = dir.join("records.jsonl");
        let base = quick_tuner(true, ModelKind::Pacm).run();

        let mut t = quick_tuner(true, ModelKind::Pacm);
        t.set_store(Store::open(&path).unwrap(), false);
        let recorded = t.run();
        assert_eq!(
            serde_json::to_string(&base).unwrap(),
            serde_json::to_string(&recorded).unwrap(),
            "a record-only store must only observe the campaign"
        );
        let store = Store::open(&path).unwrap();
        assert_eq!(
            store.len() as u64,
            recorded.stats.trials,
            "fault-free: one record per live measurement (warm-up included)"
        );
        assert_eq!(store.replay_stats().skipped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A small multi-task campaign for warm-start tests: every task's
    /// fallback lands in the store, so a warm rerun saves one warm-up
    /// trial per task.
    fn multi_task_tuner() -> Tuner {
        let mut t =
            Tuner::new(GpuSpec::t4(), TunerConfig::quick(), ModelSetup::Fresh(ModelKind::Pacm));
        t.add_task(Workload::matmul(1, 512, 512, 512), 2);
        t.add_task(Workload::reduction(1024, 256), 1);
        t.add_task(Workload::elementwise(pruner_ir::EwKind::Relu, 1 << 18), 1);
        t
    }

    #[test]
    fn warm_start_measures_strictly_less_and_is_deterministic() {
        let dir = store_dir("warm");
        let first_path = dir.join("records.jsonl");
        let mut first = multi_task_tuner();
        first.set_store(Store::open(&first_path).unwrap(), false);
        let cold = first.run();

        // Re-running from the same store state twice must be
        // byte-identical, so replay from two copies of the same file.
        let copy_a = dir.join("a.jsonl");
        let copy_b = dir.join("b.jsonl");
        std::fs::copy(&first_path, &copy_a).unwrap();
        std::fs::copy(&first_path, &copy_b).unwrap();

        let mut wa = multi_task_tuner();
        wa.set_store(Store::open(&copy_a).unwrap(), true);
        let warm_a = wa.run();
        let mut wb = multi_task_tuner();
        wb.set_store(Store::open(&copy_b).unwrap(), true);
        let warm_b = wb.run();

        assert_eq!(
            serde_json::to_string(&warm_a).unwrap(),
            serde_json::to_string(&warm_b).unwrap(),
            "same store state must replay to a byte-identical campaign"
        );
        assert!(
            warm_a.stats.trials < cold.stats.trials,
            "warm start must measure strictly less: {} vs {}",
            warm_a.stats.trials,
            cold.stats.trials
        );
        assert!(
            warm_a.best_latency_s <= cold.best_latency_s,
            "replayed elites mean the warm campaign starts from the cold one's best"
        );
        // The warm campaign's fresh discoveries were appended to its copy.
        assert!(Store::open(&copy_a).unwrap().len() > Store::open(&first_path).unwrap().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_quarantines_replay_without_remeasuring() {
        let dir = store_dir("quarantine");
        let path = dir.join("records.jsonl");
        // Fail-fast retries at a high fault rate: every failed attempt
        // quarantines its candidate, so the store reliably collects
        // failure verdicts.
        let cfg =
            TunerConfig { fault_rate: 0.5, max_retries: 0, ..TunerConfig::quick() };
        let build = |cfg: TunerConfig| {
            let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
            t.add_task(Workload::matmul(1, 512, 512, 512), 1);
            t.add_task(Workload::reduction(1024, 256), 1);
            t
        };
        let mut first = build(cfg);
        first.set_store(Store::open(&path).unwrap(), false);
        let cold = first.run();
        assert!(cold.stats.quarantined > 0, "rate 0.5 fail-fast must quarantine something");
        let store = Store::open(&path).unwrap();
        let failures =
            store.records().iter().filter(|r| !r.outcome.is_success()).count() as u64;
        assert_eq!(failures, cold.stats.quarantined, "quarantine verdicts are persisted too");

        let trace = pruner_trace::TraceHandle::new();
        let mut warm = build(cfg);
        warm.set_store(Store::open(&path).unwrap(), true);
        warm.set_recorder(Box::new(trace.clone()));
        let warmed = warm.run();
        assert!(warmed.stats.trials < cold.stats.trials);
        let records = trace.records();
        let replayed = records.iter().find(|r| r.kind() == "store_replay").unwrap();
        let get = |k: &str| replayed.get(k).and_then(pruner_trace::Value::as_u64).unwrap();
        assert_eq!(get("loaded"), store.len() as u64);
        assert_eq!(get("preseeded"), get("matched"));
        assert!(get("pretrain_samples") >= 2, "logged successes pre-train the model");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_checkpoint_is_byte_identical() {
        let cfg = TunerConfig {
            rounds: 6,
            fault_rate: 0.15,
            checkpoint_every: 3,
            ..TunerConfig::quick()
        };
        let build = |cfg: TunerConfig| {
            let mut t = Tuner::new(GpuSpec::t4(), cfg, ModelSetup::Fresh(ModelKind::Pacm));
            t.add_task(Workload::matmul(1, 512, 512, 512), 1);
            t
        };
        let full = build(cfg).run();

        let dir = std::env::temp_dir().join(format!("pruner-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut halted =
            build(TunerConfig { halt_after: Some(3), ..cfg });
        halted.set_checkpoint_path(&path);
        let partial = halted.run();
        assert!(partial.curve.points().len() < full.curve.points().len());

        let resumed = Tuner::resume(&path).unwrap().run();
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resumed campaign must be byte-identical to the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_mtl_is_byte_identical() {
        let cfg = TunerConfig { rounds: 4, checkpoint_every: 2, ..TunerConfig::quick() };
        let build = |cfg: TunerConfig| {
            let mut t = Tuner::new(
                GpuSpec::t4(),
                cfg,
                ModelSetup::Mtl { pretrained: PacmModel::new(1), momentum: 0.99 },
            );
            t.add_task(Workload::matmul(1, 256, 256, 256), 1);
            t
        };
        let full = build(cfg).run();
        let dir = std::env::temp_dir().join(format!("pruner-mtl-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut halted = build(TunerConfig { halt_after: Some(2), ..cfg });
        halted.set_checkpoint_path(&path);
        halted.run();
        let resumed = Tuner::resume(&path).unwrap().run();
        assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "MTL state (Siamese + Adam step counter) must survive the checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
