//! `pruner-tune` — the command-line front end of the reproduction.
//!
//! ```text
//! pruner-tune --platform t4 --network R-50 --trials 800
//! pruner-tune --platform a100 --matmul 1,512,3072,768 --model ansor --no-psa
//! pruner-tune --platform titanv --network B-base --trials 500 \
//!             --show-schedules 3 --output run.json
//! ```

use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::{zoo, Network, Workload};
use pruner::sketch::render;
use pruner::tuner::TunerConfig;
use pruner::Pruner;
use std::process::ExitCode;

/// Which measurement backend a campaign runs on.
#[derive(Clone, Copy, PartialEq)]
enum BackendChoice {
    /// The analytical GPU simulator (default).
    Sim,
    /// The executable CPU backend: candidates actually run, latency is
    /// wall-clock time.
    Cpu,
}

struct Args {
    platform: GpuSpec,
    backend: BackendChoice,
    network: Option<Network>,
    workloads: Vec<Workload>,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
    model: ModelKind,
    use_psa: bool,
    fault_rate: f64,
    max_retries: Option<u32>,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    resume: Option<String>,
    halt_after: Option<usize>,
    deadline: Option<f64>,
    watchdog_secs: Option<f64>,
    max_restarts: Option<u32>,
    show_schedules: usize,
    output: Option<String>,
    trace_out: Option<String>,
    report: bool,
    store: Option<String>,
    warm_start: bool,
}

const USAGE: &str = "\
pruner-tune: tune tensor programs on a simulated GPU

USAGE:
    pruner-tune --platform <p> (--network <name> | --matmul B,M,N,K | --conv2d N,C,H,W,CO,K,S,P)...
                [--backend sim|cpu]
                [--trials N] [--seed N] [--threads N] [--model <m>] [--no-psa]
                [--fault-rate R] [--max-retries N]
                [--checkpoint file.json] [--checkpoint-every N] [--halt-after N]
                [--deadline S] [--watchdog-secs S] [--max-restarts N]
                [--show-schedules N] [--output file.json]
                [--trace-out file.jsonl] [--report]
                [--store records.jsonl] [--warm-start on|off]
    pruner-tune --resume file.json [--checkpoint file.json] [--output file.json]
                [--trace-out file.jsonl] [--report] [--store records.jsonl]
    pruner-tune records (stats | compact | export) --store records.jsonl
                [--platform <p>] [--output dataset.json]
    pruner-tune serve (start | submit | status | cancel | predict | shutdown) ...
                (resident multi-tenant tuning daemon; see `serve --help`)
    pruner-tune fleet --state-dir <dir> --roster <p1,p2,...> ...
                (cross-hardware continual-learning fleet; see `fleet --help`)

OPTIONS:
    --platform <p>        k80 | t4 | titanv | a100 | orin
    --backend <b>         sim | cpu [default: sim]. `sim` measures on the
                          analytical GPU simulator; `cpu` actually executes
                          every candidate on the host CPU and reports wall
                          time (see docs/FIDELITY.md; worker threads come
                          from PRUNER_CPU_THREADS). --fault-rate only
                          applies to `sim`
    --network <name>      R-50 WR-50 I-V3 D-121 MB-V2 ViT DL-V3 DeTR B-base B-tiny R3D-18
    --matmul B,M,N,K      add a matmul task (repeatable)
    --conv2d N,C,H,W,CO,K,S,P  add a conv2d task (repeatable)
    --trials N            measurement budget [default: 800]
    --seed N              RNG seed [default: 42]
    --threads N           pipeline worker threads; results are identical at
                          any value [default: all host cores]
    --model <m>           pacm | ansor | xgb | tensetmlp | tlp | random [default: pacm]
    --no-psa              disable PSA search-space pruning
    --fault-rate R        inject deterministic hardware failures (compile
                          errors, timeouts, device resets, outlier timings)
                          into the measurement path at composite rate R
                          [default: 0]
    --max-retries N       measurement retries before a candidate is
                          quarantined [default: 2]
    --checkpoint <file>   write a crash-safe campaign checkpoint (atomic
                          rename) every --checkpoint-every rounds
    --checkpoint-every N  rounds between checkpoint writes [default: 5]
    --halt-after N        stop after N rounds (simulates a crash for
                          kill-and-resume testing)
    --resume <file>       continue an interrupted campaign from a checkpoint;
                          the result is byte-identical to an uninterrupted
                          run (campaign flags come from the checkpoint)
    --deadline S          run under the crash-safe supervisor with a wall-clock
                          budget of S host seconds; on expiry the campaign is
                          parked (checkpointed) and the exit code is 3
    --watchdog-secs S     supervisor watchdog: restart the campaign from its
                          last checkpoint if a round makes no progress for S
                          host seconds [default: 30]
    --max-restarts N      supervised restarts allowed before the campaign is
                          quarantined (exit code 4) [default: 3]
    --show-schedules N    print the N best tuned schedules as pseudo-TIR [default: 1]
    --output <file>       write the tuning result as JSON
    --trace-out <file>    record the campaign as versioned JSONL trace events
                          (funnel per round, spans, faults, counters) and
                          write them atomically to <file>
    --report              print an end-of-campaign summary table (funnel,
                          simulated-time ledger, host wall clock, faults)
                          to stderr
    --store <file>        persist every measurement verdict to an append-only
                          JSONL tuning-record store (see docs/STORE_FORMAT.md)
                          and warm-start from records of earlier campaigns on
                          the same platform
    --warm-start on|off   with --store, replay matching records before round 0
                          (pre-seed the measurement cache and pre-train the
                          cost model); `off` records without replaying
                          [default: on]

EXIT CODES:
    0                     campaign completed
    1                     usage or I/O error
    3                     supervised campaign hit --deadline and was parked
    4                     supervised campaign was quarantined (too many faults)

RECORDS SUBCOMMAND (inspect a store without tuning):
    stats                 print record counts per platform/workload/verdict
                          plus corruption counters from loading the file
    compact               rewrite the store atomically, dropping duplicate and
                          damaged lines
    export                convert successful records into a pruner-dataset
                          JSON file (--output) for offline pre-training;
                          --platform selects one platform when the store
                          holds several
";

fn parse_u64_list(s: &str, n: usize, flag: &str) -> Result<Vec<u64>, String> {
    let parts: Result<Vec<u64>, _> = s.split(',').map(|p| p.trim().parse()).collect();
    match parts {
        Ok(v) if v.len() == n => Ok(v),
        _ => Err(format!("{flag} expects {n} comma-separated integers, got `{s}`")),
    }
}


fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        platform: GpuSpec::t4(),
        backend: BackendChoice::Sim,
        network: None,
        workloads: Vec::new(),
        trials: 800,
        seed: 42,
        threads: None,
        model: ModelKind::Pacm,
        use_psa: true,
        fault_rate: 0.0,
        max_retries: None,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        halt_after: None,
        deadline: None,
        watchdog_secs: None,
        max_restarts: None,
        show_schedules: 1,
        output: None,
        trace_out: None,
        report: false,
        store: None,
        warm_start: true,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_platform = false;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--platform" => {
                let v = value("--platform")?;
                args.platform =
                    GpuSpec::by_name(&v).ok_or_else(|| format!("unknown platform `{v}`"))?;
                saw_platform = true;
            }
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "sim" => BackendChoice::Sim,
                    "cpu" => BackendChoice::Cpu,
                    other => return Err(format!("--backend expects sim|cpu, got `{other}`")),
                }
            }
            "--network" => {
                let v = value("--network")?;
                args.network = Some(
                    zoo::by_short_name(&v, 1).ok_or_else(|| format!("unknown network `{v}`"))?,
                );
            }
            "--matmul" => {
                let v = parse_u64_list(&value("--matmul")?, 4, "--matmul")?;
                args.workloads.push(Workload::matmul(v[0], v[1], v[2], v[3]));
            }
            "--conv2d" => {
                let v = parse_u64_list(&value("--conv2d")?, 8, "--conv2d")?;
                args.workloads
                    .push(Workload::conv2d(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]));
            }
            "--trials" => {
                args.trials =
                    value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                let n: usize =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--model" => {
                args.model = match value("--model")?.as_str() {
                    "pacm" => ModelKind::Pacm,
                    "ansor" => ModelKind::Ansor,
                    "xgb" => ModelKind::AnsorXgb,
                    "tensetmlp" => ModelKind::TensetMlp,
                    "tlp" => ModelKind::Tlp,
                    "random" => ModelKind::Random,
                    other => return Err(format!("unknown model `{other}`")),
                }
            }
            "--no-psa" => args.use_psa = false,
            "--fault-rate" => {
                let r: f64 =
                    value("--fault-rate")?.parse().map_err(|e| format!("--fault-rate: {e}"))?;
                if !(0.0..=0.9).contains(&r) {
                    return Err("--fault-rate must be in [0, 0.9]".into());
                }
                args.fault_rate = r;
            }
            "--max-retries" => {
                args.max_retries = Some(
                    value("--max-retries")?
                        .parse()
                        .map_err(|e| format!("--max-retries: {e}"))?,
                )
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--resume" => args.resume = Some(value("--resume")?),
            "--halt-after" => {
                args.halt_after = Some(
                    value("--halt-after")?
                        .parse()
                        .map_err(|e| format!("--halt-after: {e}"))?,
                )
            }
            "--deadline" => {
                let s: f64 =
                    value("--deadline")?.parse().map_err(|e| format!("--deadline: {e}"))?;
                if s <= 0.0 {
                    return Err("--deadline must be positive".into());
                }
                args.deadline = Some(s);
            }
            "--watchdog-secs" => {
                let s: f64 = value("--watchdog-secs")?
                    .parse()
                    .map_err(|e| format!("--watchdog-secs: {e}"))?;
                if s <= 0.0 {
                    return Err("--watchdog-secs must be positive".into());
                }
                args.watchdog_secs = Some(s);
            }
            "--max-restarts" => {
                args.max_restarts = Some(
                    value("--max-restarts")?
                        .parse()
                        .map_err(|e| format!("--max-restarts: {e}"))?,
                )
            }
            "--show-schedules" => {
                args.show_schedules = value("--show-schedules")?
                    .parse()
                    .map_err(|e| format!("--show-schedules: {e}"))?
            }
            "--output" => args.output = Some(value("--output")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--report" => args.report = true,
            "--store" => args.store = Some(value("--store")?),
            "--warm-start" => {
                args.warm_start = match value("--warm-start")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--warm-start expects on|off, got `{other}`")),
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.resume.is_none() {
        if !saw_platform {
            return Err("--platform is required".into());
        }
        if args.network.is_none() && args.workloads.is_empty() {
            return Err("give --network or at least one --matmul/--conv2d".into());
        }
    }
    if args.backend == BackendChoice::Cpu && args.fault_rate > 0.0 {
        return Err("--fault-rate applies only to --backend sim (cpu faults are real)".into());
    }
    let supervised =
        args.deadline.is_some() || args.watchdog_secs.is_some() || args.max_restarts.is_some();
    if supervised && args.resume.is_some() {
        return Err(
            "supervision flags do not combine with --resume; point --checkpoint at the \
             file instead (the supervisor resumes from it automatically)"
                .into(),
        );
    }
    Ok(args)
}

/// Applies the resume-time flags (new checkpoint path, trace recorder,
/// record store) and runs a restored campaign, for either backend.
fn run_resumed<B: pruner::gpu::Backend>(
    mut pruner: Pruner<B>,
    args: &Args,
    trace: &Option<pruner::trace::TraceHandle>,
) -> Result<pruner::tuner::TuningResult, String> {
    if let Some(path) = &args.checkpoint {
        pruner.tuner_mut().set_checkpoint_path(path.clone());
    }
    if let Some(trace) = trace {
        pruner.tuner_mut().set_recorder(Box::new(trace.clone()));
    }
    if let Some(path) = &args.store {
        // Resumed campaigns never replay (they continue mid-search);
        // the store keeps recording fresh verdicts.
        let store = pruner::store::Store::open(path)
            .map_err(|e| format!("error opening store {path}: {e}"))?;
        pruner.tuner_mut().set_store(store, args.warm_start);
    }
    Ok(pruner.tune())
}

/// Builds the campaign from the parsed flags — shared by the plain and
/// supervised paths (the supervisor calls it again on a restart that
/// found no checkpoint on disk yet).
fn make_builder(
    args: &Args,
    trace: &Option<pruner::trace::TraceHandle>,
) -> pruner::PrunerBuilder {
    let mut builder = Pruner::builder(args.platform.clone())
        .config(TunerConfig::default())
        .model(args.model)
        .seed(args.seed)
        .trials(args.trials)
        .fault_rate(args.fault_rate);
    if let Some(threads) = args.threads {
        builder = builder.threads(threads);
    }
    if !args.use_psa {
        builder = builder.without_psa();
    }
    if let Some(retries) = args.max_retries {
        builder = builder.max_retries(retries);
    }
    if let Some(path) = &args.checkpoint {
        builder = builder.checkpoint(path);
    }
    if let Some(every) = args.checkpoint_every {
        builder = builder.checkpoint_every(every);
    }
    if let Some(halt) = args.halt_after {
        builder = builder.halt_after(halt);
    }
    if let Some(path) = &args.store {
        builder = builder.store(path).warm_start(args.warm_start);
    }
    if let Some(trace) = trace {
        builder = builder.recorder(Box::new(trace.clone()));
    }
    if let Some(net) = &args.network {
        builder = builder.network(net);
    }
    for wl in &args.workloads {
        builder = builder.workload(wl.clone());
    }
    builder
}

/// Runs a campaign under the crash-safe supervisor (`--deadline` /
/// `--watchdog-secs` / `--max-restarts`). Returns the result on
/// completion, or the process exit code on a deadline park (3) or
/// quarantine (4).
fn run_supervised<B, F>(
    args: &Args,
    trace: &Option<pruner::trace::TraceHandle>,
    make_fresh: F,
) -> Result<pruner::tuner::TuningResult, ExitCode>
where
    B: pruner::gpu::Backend,
    F: Fn(&Args, &Option<pruner::trace::TraceHandle>) -> Pruner<B>,
{
    use pruner::tuner::{CampaignOutcome, Supervisor, SupervisorConfig, Tuner};
    let cfg = SupervisorConfig {
        wall_deadline_s: args.deadline,
        watchdog_timeout_s: args.watchdog_secs.unwrap_or(30.0),
        max_restarts: args.max_restarts.unwrap_or(3),
        seed: args.seed,
        checkpoint: args.checkpoint.as_ref().map(std::path::PathBuf::from),
        ..SupervisorConfig::default()
    };
    let mut supervisor = Supervisor::new(cfg);
    if let Some(trace) = trace {
        supervisor.set_recorder(Box::new(trace.clone()));
    }
    // Re-attach what a checkpoint does not carry — the checkpoint path,
    // the trace recorder and the record store (a resumed campaign
    // records without replaying).
    let attach = |mut tuner: Tuner<B>| -> std::io::Result<Tuner<B>> {
        if let Some(path) = &args.checkpoint {
            tuner.set_checkpoint_path(path.clone());
        }
        if let Some(tr) = trace {
            tuner.set_recorder(Box::new(tr.clone()));
        }
        if let Some(path) = &args.store {
            let store = pruner::store::Store::open(path)
                .map_err(|e| std::io::Error::new(e.kind(), format!("store {path}: {e}")))?;
            tuner.set_store(store, args.warm_start);
        }
        Ok(tuner)
    };
    let run = supervisor.run(|ckpt| match ckpt {
        // A restart: rebuild from the checkpoint the supervisor loaded.
        Some(ckpt) => attach(Tuner::<B>::from_checkpoint_backend(ckpt)?),
        // First attempt: pick up a previously parked campaign if the
        // checkpoint file already exists (this is how a deadline-parked
        // run is continued), otherwise start fresh.
        None => match args.checkpoint.as_deref().filter(|p| std::path::Path::new(p).exists()) {
            Some(path) => attach(Tuner::<B>::resume_backend(path)?),
            None => Ok(make_fresh(args, trace).into_tuner()),
        },
    });
    for fault in &run.faults {
        eprintln!("supervisor: fault: {fault}");
    }
    if run.restarts > 0 {
        eprintln!("supervisor: recovered through {} restart(s)", run.restarts);
    }
    match run.outcome {
        CampaignOutcome::Completed => Ok(run.result.expect("completed campaigns carry a result")),
        CampaignOutcome::WallDeadlineExceeded | CampaignOutcome::SimDeadlineExceeded => {
            match &run.result {
                Some(result) => println!(
                    "deadline exceeded: campaign parked at best {:.4} ms after {} trials{}",
                    result.best_latency_s * 1e3,
                    result.stats.trials,
                    args.checkpoint
                        .as_deref()
                        .map(|p| format!(" (resume from {p})"))
                        .unwrap_or_default(),
                ),
                None => eprintln!("deadline exceeded: campaign could not be parked"),
            }
            Err(ExitCode::from(3))
        }
        CampaignOutcome::Quarantined => {
            eprintln!(
                "supervisor: campaign quarantined after {} fault(s)",
                run.faults.len()
            );
            Err(ExitCode::from(4))
        }
        // The one-shot CLI installs no external stop signal, so a
        // cancellation can only come from a wrapping service; treat it
        // like a park (the checkpoint, if any, is resumable).
        CampaignOutcome::Cancelled => {
            eprintln!("supervisor: campaign cancelled");
            Err(ExitCode::from(3))
        }
    }
}

/// Writes `--trace-out` and prints `--report`; returns `false` when the
/// trace write failed.
fn finish_trace(args: &Args, trace: &Option<pruner::trace::TraceHandle>) -> bool {
    let Some(trace) = trace else { return true };
    if let Some(path) = &args.trace_out {
        if let Err(e) = trace.write_atomic(std::path::Path::new(path)) {
            eprintln!("error writing trace {path}: {e}");
            return false;
        }
        println!("trace written to {path} ({} events)", trace.len());
    }
    if args.report {
        eprint!("{}", trace.report().render());
    }
    true
}

/// `pruner-tune records <mode>` — inspect/compact/export a tuning-record
/// store without running a campaign.
fn records_main(argv: &[String]) -> Result<(), String> {
    use pruner::store::Store;

    let mode = argv.first().map(String::as_str).unwrap_or_default();
    if !matches!(mode, "stats" | "compact" | "export") {
        return Err(format!("records expects stats|compact|export, got `{mode}`"));
    }
    let mut store_path = None;
    let mut platform: Option<GpuSpec> = None;
    let mut output = None;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--store" => store_path = Some(value("--store")?),
            "--platform" => {
                let v = value("--platform")?;
                platform =
                    Some(GpuSpec::by_name(&v).ok_or_else(|| format!("unknown platform `{v}`"))?);
            }
            "--output" => output = Some(value("--output")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let path = store_path.ok_or("records needs --store <file>")?;
    let store = Store::open(&path).map_err(|e| format!("cannot open store {path}: {e}"))?;
    let stats = store.replay_stats();

    match mode {
        "stats" => {
            println!("store    : {path}");
            println!(
                "records  : {} loaded from {} lines ({} skipped: {} duplicate, {} corrupt, {} unknown-version, {} fingerprint-mismatched)",
                stats.loaded,
                stats.total_lines,
                stats.skipped(),
                stats.duplicates,
                stats.corrupt_lines,
                stats.version_skips,
                stats.fingerprint_mismatches
            );
            // Per (platform, workload) verdict counts, first-seen order.
            let mut order: Vec<(String, String)> = Vec::new();
            let mut counts: std::collections::HashMap<(String, String), (usize, usize)> =
                std::collections::HashMap::new();
            for r in store.records() {
                let key = (r.spec.clone(), r.workload_fp.clone());
                let entry = counts.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (0, 0)
                });
                if r.outcome.is_success() {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
            for key in &order {
                let (ok, failed) = counts[key];
                println!("  {:<14} {:<40} {ok:>6} ok {failed:>6} failed", key.0, key.1);
            }
        }
        "compact" => {
            store.flush().map_err(|e| format!("cannot rewrite {path}: {e}"))?;
            println!(
                "compacted {path}: kept {} records, dropped {} lines",
                store.len(),
                stats.skipped()
            );
        }
        "export" => {
            let out = output.ok_or("export needs --output <dataset.json>")?;
            let wanted_fp = platform.as_ref().map(|spec| spec.fingerprint());
            let successes: Vec<_> = store
                .records()
                .iter()
                .filter(|r| wanted_fp.as_deref().is_none_or(|fp| r.spec_fp == fp))
                .filter_map(|r| r.outcome.latency_s().map(|l| (r, l)))
                .collect();
            let mut platforms: Vec<&str> =
                successes.iter().map(|(r, _)| r.spec.as_str()).collect();
            platforms.sort_unstable();
            platforms.dedup();
            let name = match (platform.as_ref(), platforms.as_slice()) {
                (Some(spec), _) => spec.name.clone(),
                (None, [single]) => (*single).to_string(),
                (None, []) => return Err("no successful records to export".into()),
                (None, many) => {
                    return Err(format!(
                        "store holds {} platforms ({}); pick one with --platform",
                        many.len(),
                        many.join(", ")
                    ))
                }
            };
            let ds = pruner::dataset::Dataset::from_measurements(
                name,
                successes.into_iter().map(|(r, l)| (r.program.clone(), l)),
            );
            if ds.num_programs() == 0 {
                return Err("no successful records to export".into());
            }
            ds.save_json(&out).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "exported {} programs across {} workloads to {out}",
                ds.num_programs(),
                ds.entries.len()
            );
        }
        _ => unreachable!(),
    }
    Ok(())
}

const SERVE_USAGE: &str = "\
pruner-tune serve: resident multi-tenant tuning daemon (see docs/SERVING.md)

USAGE:
    pruner-tune serve start --socket <path> --state-dir <dir>
                [--workers N] [--budget N] [--model-dir <dir>]
                [--predict-threads N]
    pruner-tune serve submit --socket <path> --tenant <name> --platform <p>
                (--network <name> | --matmul B,M,N,K | --conv2d N,C,H,W,CO,K,S,P)...
                [--trials N] [--seed N] [--threads N] [--no-psa]
                [--checkpoint-every N] [--model <name>]
    pruner-tune serve status --socket <path> --campaign <id> [--output file.json]
    pruner-tune serve cancel --socket <path> --campaign <id>
    pruner-tune serve predict --socket <path> --model <name> --matmul B,M,N,K...
    pruner-tune serve shutdown --socket <path>

OPTIONS:
    --socket <path>       Unix domain socket the daemon answers on
    --state-dir <dir>     daemon state root: shared store, per-tenant campaign
                          directories (checkpoints, manifests, results)
    --workers N           concurrent campaign workers [default: 2]
    --budget N            max concurrent campaigns per tenant [default: 1]
    --model-dir <dir>     directory of pre-trained ModelSnapshot JSON files;
                          `--model <name>` resolves <dir>/<name>.json first,
                          then the built-in model kinds
    --predict-threads N   predict_batch parallelism of the shared-model
                          batchers [default: 1]
    --tenant <name>       tenant the campaign belongs to ([a-zA-Z0-9_-])
    --model <name>        submit: share the named frozen daemon model across
                          tenants (predictions are batched); omit to train a
                          fresh per-campaign PaCM, byte-identical to the
                          one-shot CLI. predict: the model to score against
    --campaign <id>       campaign id returned by submit
    --output <file>       status: write the finished campaign's result JSON

EXIT CODES:
    0  request served (status: campaign exists, any state)
    1  usage error, connection failure, or daemon-side error reply

A daemon restarted on the same --state-dir resumes every in-flight
campaign from its checkpoint; results are byte-identical to uninterrupted
runs.
";

/// Parses repeated workload flags shared by `serve submit` and `serve
/// predict`.
fn parse_workload_flag(
    flag: &str,
    value: &str,
    workloads: &mut Vec<Workload>,
) -> Result<bool, String> {
    match flag {
        "--matmul" => {
            let v = parse_u64_list(value, 4, "--matmul")?;
            workloads.push(Workload::matmul(v[0], v[1], v[2], v[3]));
            Ok(true)
        }
        "--conv2d" => {
            let v = parse_u64_list(value, 8, "--conv2d")?;
            workloads.push(Workload::conv2d(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]));
            Ok(true)
        }
        _ => Ok(false),
    }
}

const FLEET_USAGE: &str = "\
pruner-tune fleet: tune one workload suite across an ordered roster of
devices with a shared continually-learning cost model (see docs/FLEET.md)

USAGE:
    pruner-tune fleet --state-dir <dir> --roster <p1,p2,...>
                (--matmul B,M,N,K | --conv2d N,C,H,W,CO,K,S,P)...
                [--roster-file specs.json]
                [--trials N] [--seed N] [--threads N] [--momentum F]
                [--pretrain N] [--probes N] [--store records.jsonl]
                [--halt-after-stage N]
                [--watchdog-secs S] [--max-restarts N]
                [--output fleet.json] [--trace-out file.jsonl] [--report]

OPTIONS:
    --state-dir <dir>     fleet state: the resume manifest (fleet.json) and
                          per-stage supervisor checkpoints. Rerunning with
                          the same directory resumes mid-roster,
                          byte-identically to an uninterrupted run
    --roster <list>       comma-separated device presets, in tuning order:
                          k80 | t4 | titanv | a100 | orin. A device may
                          repeat (its scoring head is restored on revisit)
    --roster-file <file>  JSON array of full GpuSpec objects appended after
                          the --roster presets (synthetic devices)
    --matmul B,M,N,K      add a matmul task to the suite (repeatable)
    --conv2d N,C,H,W,CO,K,S,P  add a conv2d task (repeatable)
    --trials N            measurement budget per stage [default: 800]
    --seed N              RNG seed (campaigns, pre-training, probes) [default: 42]
    --threads N           pipeline worker threads; fleet results are
                          byte-identical at any value [default: all host cores]
    --momentum F          MTL momentum folding each stage into the shared
                          Siamese trunk [default: 0.99]
    --pretrain N          pre-training samples per workload drawn on the
                          first roster device [default: 64]
    --probes N            probe programs per workload per device for the
                          anti-forgetting evaluation [default: 32]
    --store <file>        shared measurement store; stages warm-start from
                          records of their own device fingerprint only
    --halt-after-stage N  park the fleet after N completed stages (exit 3);
                          rerun with the same --state-dir to resume
    --watchdog-secs S     per-stage supervisor watchdog [default: 30]
    --max-restarts N      per-stage restarts before quarantine [default: 3]
    --output <file>       write the FleetResult (per-stage results plus the
                          transfer/forgetting report) as JSON
    --trace-out <file>    write fleet.* / supervisor.* / campaign trace
                          events as JSONL
    --report              print the end-of-run summary table (includes the
                          fleet section) to stderr

EXIT CODES:
    0    roster completed
    1    usage or I/O error
    3    fleet parked mid-roster (--halt-after-stage or stage deadline)
";

/// `pruner-tune fleet` — run a cross-hardware continual-learning fleet.
fn fleet_main(argv: &[String]) -> Result<ExitCode, String> {
    use pruner::{Fleet, FleetConfig, FleetStatus};

    if matches!(argv.first().map(String::as_str), Some("--help" | "-h" | "help")) {
        print!("{FLEET_USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut state_dir: Option<String> = None;
    let mut roster: Vec<GpuSpec> = Vec::new();
    let mut roster_file: Option<String> = None;
    let mut workloads: Vec<Workload> = Vec::new();
    let mut config = TunerConfig::default();
    let mut trials: Option<usize> = None;
    let mut momentum: f32 = 0.99;
    let mut pretrain: usize = 64;
    let mut probes: usize = 32;
    let mut store: Option<String> = None;
    let mut halt_after_stage: Option<usize> = None;
    let mut watchdog_secs: f64 = 30.0;
    let mut max_restarts: u32 = 3;
    let mut output: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut report = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--state-dir" => state_dir = Some(value("--state-dir")?),
            "--roster" => {
                for name in value("--roster")?.split(',') {
                    let name = name.trim();
                    roster.push(
                        GpuSpec::by_name(name)
                            .ok_or_else(|| format!("unknown roster platform `{name}`"))?,
                    );
                }
            }
            "--roster-file" => roster_file = Some(value("--roster-file")?),
            "--trials" => {
                trials = Some(value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?)
            }
            "--seed" => {
                config.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1)
            }
            "--momentum" => {
                momentum = value("--momentum")?.parse().map_err(|e| format!("--momentum: {e}"))?
            }
            "--pretrain" => {
                pretrain = value("--pretrain")?.parse().map_err(|e| format!("--pretrain: {e}"))?
            }
            "--probes" => {
                probes = value("--probes")?.parse().map_err(|e| format!("--probes: {e}"))?
            }
            "--store" => store = Some(value("--store")?),
            "--halt-after-stage" => {
                halt_after_stage = Some(
                    value("--halt-after-stage")?
                        .parse()
                        .map_err(|e| format!("--halt-after-stage: {e}"))?,
                )
            }
            "--watchdog-secs" => {
                watchdog_secs = value("--watchdog-secs")?
                    .parse()
                    .map_err(|e| format!("--watchdog-secs: {e}"))?
            }
            "--max-restarts" => {
                max_restarts = value("--max-restarts")?
                    .parse()
                    .map_err(|e| format!("--max-restarts: {e}"))?
            }
            "--output" => output = Some(value("--output")?),
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--report" => report = true,
            other if parse_workload_flag(other, &value(other)?, &mut workloads)? => {}
            other => return Err(format!("unknown fleet flag `{other}`")),
        }
    }
    let state_dir = state_dir.ok_or("fleet needs --state-dir <dir>")?;
    if let Some(path) = &roster_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let extra: Vec<GpuSpec> =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        roster.extend(extra);
    }
    if roster.is_empty() {
        return Err("fleet needs --roster and/or --roster-file".into());
    }
    if workloads.is_empty() {
        return Err("fleet needs at least one --matmul/--conv2d".into());
    }
    if let Some(trials) = trials {
        if trials < config.measure_per_round {
            return Err(format!("need at least {} trials", config.measure_per_round));
        }
        config.rounds = trials / config.measure_per_round;
    }

    let supervisor = pruner::tuner::SupervisorConfig {
        watchdog_timeout_s: watchdog_secs,
        max_restarts,
        ..Default::default()
    };
    let cfg = FleetConfig {
        roster,
        workloads: workloads.into_iter().map(|wl| (wl, 1)).collect(),
        tuner: config,
        momentum,
        pretrain_per_workload: pretrain,
        probes_per_workload: probes,
        pretrain_epochs: 3,
        seed: config.seed,
        state_dir: state_dir.clone().into(),
        store: store.map(Into::into),
        halt_after_stages: halt_after_stage,
        supervisor,
    };
    println!("fleet    : {} device(s), state in {state_dir}", cfg.roster.len());
    for (i, spec) in cfg.roster.iter().enumerate() {
        println!("stage {i}  : {}", spec.name);
    }

    let trace = (trace_out.is_some() || report).then(pruner::trace::TraceHandle::new);
    let roster_len = cfg.roster.len();
    let mut fleet = Fleet::new(cfg);
    if let Some(t) = &trace {
        fleet.set_recorder(Box::new(t.clone()));
    }
    let run = fleet.run().map_err(|e| format!("fleet error: {e}"))?;

    let finish = |trace: &Option<pruner::trace::TraceHandle>| -> Result<(), String> {
        if let (Some(trace), Some(path)) = (trace, &trace_out) {
            trace
                .write_atomic(std::path::Path::new(path))
                .map_err(|e| format!("error writing trace {path}: {e}"))?;
            println!("trace written to {path} ({} events)", trace.len());
        }
        if report {
            if let Some(trace) = trace {
                eprint!("{}", trace.report().render());
            }
        }
        Ok(())
    };

    match run.status {
        FleetStatus::Parked => {
            println!(
                "parked   : {} of {} stage(s) done; rerun with the same --state-dir to resume",
                run.stages_done, roster_len
            );
            finish(&trace)?;
            Ok(ExitCode::from(3))
        }
        FleetStatus::Completed => {
            let result = run.result.expect("completed fleet has a result");
            for d in &result.devices {
                println!(
                    "stage {}  : {} best {:.4} ms over {} trials",
                    d.stage,
                    d.name,
                    d.best_latency_s * 1e3,
                    d.trials
                );
            }
            for f in &result.report.forgetting {
                println!(
                    "forget   : {} {:+.4} (after-training {:.4} -> final {:.4})",
                    f.device, f.delta, f.score_after_training, f.final_score
                );
            }
            if let Some(path) = &output {
                std::fs::File::create(path)
                    .map_err(|e| e.to_string())
                    .and_then(|f| {
                        serde_json::to_writer_pretty(f, &result).map_err(|e| e.to_string())
                    })
                    .map_err(|e| format!("error writing {path}: {e}"))?;
                println!("result written to {path}");
            }
            finish(&trace)?;
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// `pruner-tune serve <verb>` — run or talk to the tuning daemon.
fn serve_main(argv: &[String]) -> Result<ExitCode, String> {
    use pruner::serve::{Client, Daemon, Request, Response, ServeConfig};
    use std::time::Duration;

    let verb = argv.first().map(String::as_str).unwrap_or_default();
    if matches!(verb, "--help" | "-h" | "help" | "") {
        print!("{SERVE_USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    // Flag soup shared by all verbs; each verb checks what it needs.
    let mut socket: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut workers: usize = 2;
    let mut budget: usize = 1;
    let mut model_dir: Option<String> = None;
    let mut predict_threads: usize = 1;
    let mut tenant: Option<String> = None;
    let mut campaign: Option<String> = None;
    let mut model: Option<String> = None;
    let mut output: Option<String> = None;
    let mut platform: Option<GpuSpec> = None;
    let mut network: Option<Network> = None;
    let mut workloads: Vec<Workload> = Vec::new();
    let mut config = TunerConfig::default();
    let mut trials: Option<usize> = None;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--state-dir" => state_dir = Some(value("--state-dir")?),
            "--workers" => {
                workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--budget" => {
                budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--model-dir" => model_dir = Some(value("--model-dir")?),
            "--predict-threads" => {
                predict_threads = value("--predict-threads")?
                    .parse()
                    .map_err(|e| format!("--predict-threads: {e}"))?
            }
            "--tenant" => tenant = Some(value("--tenant")?),
            "--campaign" => campaign = Some(value("--campaign")?),
            "--model" => model = Some(value("--model")?),
            "--output" => output = Some(value("--output")?),
            "--platform" => {
                let v = value("--platform")?;
                platform =
                    Some(GpuSpec::by_name(&v).ok_or_else(|| format!("unknown platform `{v}`"))?);
            }
            "--network" => {
                let v = value("--network")?;
                network = Some(
                    zoo::by_short_name(&v, 1).ok_or_else(|| format!("unknown network `{v}`"))?,
                );
            }
            "--trials" => {
                trials = Some(value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?)
            }
            "--seed" => {
                config.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1)
            }
            "--no-psa" => config.use_psa = false,
            "--checkpoint-every" => {
                config.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            other if parse_workload_flag(other, &value(other)?, &mut workloads)? => {}
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    let socket = socket.ok_or("serve needs --socket <path>")?;

    if verb == "start" {
        let state_dir = state_dir.ok_or("serve start needs --state-dir <dir>")?;
        let cfg = ServeConfig {
            socket: socket.clone().into(),
            state_dir: state_dir.into(),
            workers,
            per_tenant_budget: budget,
            model_dir: model_dir.map(Into::into),
            predict_threads,
        };
        let daemon = Daemon::start(cfg).map_err(|e| format!("cannot start daemon: {e}"))?;
        if daemon.resumed() > 0 {
            println!("resumed  : {} in-flight campaign(s)", daemon.resumed());
        }
        println!("serving  : {socket}");
        daemon.wait_shutdown().map_err(|e| format!("shutdown error: {e}"))?;
        println!("daemon stopped");
        return Ok(ExitCode::SUCCESS);
    }

    let mut client = Client::connect_with_retry(&socket, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let request = match verb {
        "submit" => {
            let tenant = tenant.ok_or("serve submit needs --tenant <name>")?;
            let platform = platform.ok_or("serve submit needs --platform <p>")?;
            if let Some(trials) = trials {
                if trials < config.measure_per_round {
                    return Err(format!("need at least {} trials", config.measure_per_round));
                }
                config.rounds = trials / config.measure_per_round;
            }
            let mut pairs: Vec<(Workload, u64)> =
                workloads.into_iter().map(|wl| (wl, 1)).collect();
            if let Some(net) = &network {
                for sg in net.subgraphs() {
                    pairs.push((sg.workload.clone(), sg.weight));
                }
            }
            if pairs.is_empty() {
                return Err("serve submit needs --network or --matmul/--conv2d".into());
            }
            Request::SubmitCampaign { tenant, spec: platform, workloads: pairs, config, model }
        }
        "status" => Request::Status {
            campaign: campaign.ok_or("serve status needs --campaign <id>")?,
        },
        "cancel" => Request::Cancel {
            campaign: campaign.ok_or("serve cancel needs --campaign <id>")?,
        },
        "predict" => {
            if workloads.is_empty() {
                return Err("serve predict needs at least one --matmul/--conv2d".into());
            }
            Request::PredictOnly {
                model: model.ok_or("serve predict needs --model <name>")?,
                programs: workloads.iter().map(pruner::sketch::Program::fallback).collect(),
            }
        }
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown serve verb `{other}`")),
    };
    let response = client.call(&request).map_err(|e| format!("request failed: {e}"))?;
    match response {
        Response::Submitted { campaign } => {
            println!("submitted: {campaign}");
            Ok(ExitCode::SUCCESS)
        }
        Response::Status { campaign, state, best_latency_s, result } => {
            match best_latency_s {
                Some(best) => println!("{campaign}: {state} (best {:.4} ms)", best * 1e3),
                None => println!("{campaign}: {state}"),
            }
            if let (Some(path), Some(json)) = (&output, &result) {
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("result written to {path}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Response::Cancelled { campaign } => {
            println!("cancelled: {campaign}");
            Ok(ExitCode::SUCCESS)
        }
        Response::Scores { scores } => {
            for (i, score) in scores.iter().enumerate() {
                println!("program {i}: {score}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Response::ShuttingDown => {
            println!("daemon shutting down");
            Ok(ExitCode::SUCCESS)
        }
        Response::Error { message } => Err(format!("daemon error: {message}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return match serve_main(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}\n\n{SERVE_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("fleet") {
        return match fleet_main(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}\n\n{FLEET_USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("records") {
        return match records_main(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // One shared trace buffer serves --trace-out and --report; the tuner
    // gets a clone, this clone stays behind to render the results.
    let trace = (args.trace_out.is_some() || args.report).then(pruner::trace::TraceHandle::new);

    let result = if let Some(ckpt) = &args.resume {
        println!("resuming : {ckpt}");
        // The checkpoint embeds its backend tag; resuming with the wrong
        // --backend fails cleanly instead of silently switching meters.
        let run = match args.backend {
            BackendChoice::Sim => Pruner::resume(ckpt)
                .map_err(|e| format!("error resuming from {ckpt}: {e}"))
                .and_then(|p| run_resumed(p, &args, &trace)),
            BackendChoice::Cpu => Pruner::resume_cpu(ckpt)
                .map_err(|e| format!("error resuming from {ckpt}: {e}"))
                .and_then(|p| run_resumed(p, &args, &trace)),
        };
        match run {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("platform : {}", args.platform);
        if args.backend == BackendChoice::Cpu {
            println!("backend  : cpu (executable; latencies are host wall time)");
        }
        if let Some(path) = &args.store {
            println!("store    : {path} (warm start {})", if args.warm_start { "on" } else { "off" });
        }
        if let Some(net) = &args.network {
            println!("network  : {net}");
        }
        for wl in &args.workloads {
            println!("workload : {wl}");
        }
        let supervised = args.deadline.is_some()
            || args.watchdog_secs.is_some()
            || args.max_restarts.is_some();
        if supervised {
            let run = match args.backend {
                BackendChoice::Sim => {
                    run_supervised(&args, &trace, |a, t| make_builder(a, t).build())
                }
                BackendChoice::Cpu => {
                    run_supervised(&args, &trace, |a, t| make_builder(a, t).build_cpu())
                }
            };
            match run {
                Ok(result) => result,
                Err(code) => {
                    // Deadline parks and quarantines still flush the
                    // trace — the supervisor.* records are the evidence.
                    finish_trace(&args, &trace);
                    return code;
                }
            }
        } else {
            let builder = make_builder(&args, &trace);
            match args.backend {
                BackendChoice::Sim => builder.build().tune(),
                BackendChoice::Cpu => builder.build_cpu().tune(),
            }
        }
    };
    println!(
        "\nbest latency : {:.4} ms   ({} trials, {:.0} simulated search seconds)",
        result.best_latency_s * 1e3,
        result.stats.trials,
        result.stats.total_s()
    );
    if result.stats.failures > 0 {
        println!(
            "faults       : {} failed attempts ({} compile, {} timeout, {} reset, {} outlier), {} retried, {} quarantined, {:.0}s lost",
            result.stats.failures,
            result.stats.compile_errors,
            result.stats.timeouts,
            result.stats.device_resets,
            result.stats.outliers,
            result.stats.retries,
            result.stats.quarantined,
            result.stats.fault_time_s + result.stats.retry_backoff_s
        );
    }

    if let Some(path) = &args.store {
        match pruner::store::Store::open(path) {
            Ok(store) => println!("store        : {} records in {path}", store.len()),
            Err(e) => eprintln!("warning: cannot re-read store {path}: {e}"),
        }
    }

    // Best schedules, slowest tasks first (they dominate the end-to-end).
    let mut order: Vec<usize> = (0..result.per_task_best.len()).collect();
    order.sort_by(|&a, &b| {
        result.per_task_best[b].1.partial_cmp(&result.per_task_best[a].1).unwrap()
    });
    for &i in order.iter().take(args.show_schedules) {
        let (wl, lat) = &result.per_task_best[i];
        println!("\n--- {} @ {:.4} ms ---", wl, lat * 1e3);
        if let Some(prog) = &result.best_programs[i] {
            print!("{}", render::render(prog));
        }
    }

    if let Some(path) = &args.output {
        match std::fs::File::create(path)
            .map_err(|e| e.to_string())
            .and_then(|f| serde_json::to_writer_pretty(f, &result).map_err(|e| e.to_string()))
        {
            Ok(()) => println!("\nresult written to {path}"),
            Err(e) => {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !finish_trace(&args, &trace) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shape_lists() {
        assert_eq!(parse_u64_list("1,512, 512 ,512", 4, "--matmul").unwrap(), [1, 512, 512, 512]);
        assert!(parse_u64_list("1,2,3", 4, "--matmul").is_err());
        assert!(parse_u64_list("1,x,3,4", 4, "--matmul").is_err());
        assert!(parse_u64_list("", 1, "--matmul").is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        for flag in
            ["--platform", "--backend", "--network", "--matmul", "--conv2d", "--trials", "--seed",
             "--threads",
             "--model", "--no-psa", "--fault-rate", "--max-retries", "--checkpoint",
             "--checkpoint-every", "--halt-after", "--resume", "--deadline", "--watchdog-secs",
             "--max-restarts", "--show-schedules", "--output",
             "--trace-out", "--report", "--store", "--warm-start"]
        {
            assert!(USAGE.contains(flag), "USAGE missing {flag}");
        }
    }

    #[test]
    fn fleet_usage_mentions_every_flag() {
        for flag in
            ["--state-dir", "--roster", "--roster-file", "--matmul", "--conv2d", "--trials",
             "--seed", "--threads", "--momentum", "--pretrain", "--probes", "--store",
             "--halt-after-stage", "--watchdog-secs", "--max-restarts", "--output",
             "--trace-out", "--report"]
        {
            assert!(FLEET_USAGE.contains(flag), "FLEET_USAGE missing {flag}");
        }
        assert!(USAGE.contains("fleet"), "top-level USAGE must mention the fleet subcommand");
    }
}
