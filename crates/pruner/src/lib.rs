//! **Pruner** — an efficient tensor-program tuner with dual awareness,
//! reproduced as a self-contained Rust stack.
//!
//! Pruner (ASPLOS'25; earlier arXiv title *"A Draft-then-Verify Exploration
//! Mechanism to Accelerate Tensor Program Tuning"*) accelerates
//! Ansor-style schedule search with three components, all implemented
//! here:
//!
//! * **PSA** ([`psa`]) — a hardware-aware static analyzer that *drafts*:
//!   it prices every candidate schedule with four penalty formulas and
//!   prunes the random sample space to a small high-quality target space.
//! * **PaCM** ([`cost`]) — a pattern-aware learned cost model that
//!   *verifies*: statement features plus a self-attention encoding of the
//!   multi-tiling data-flow, trained with LambdaRank.
//! * **MTL** ([`tuner::Mtl`]) — momentum transfer learning, which ports a
//!   cross-platform pre-trained PaCM to a new GPU without training
//!   collapse.
//!
//! Because no GPU or TVM is available to a pure-Rust reproduction, the
//! stack bottoms out in an analytical GPU simulator ([`gpu`]) that plays
//! the role of the hardware: deterministic, platform-parameterized
//! (K80/T4/TITAN V/A100/Orin) and rich enough that the learned models have
//! real signal to find. See `DESIGN.md` for the substitution argument and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```no_run
//! use pruner::{Pruner, gpu::GpuSpec, ir::Workload};
//!
//! // Tune one GEMM for 200 trials on a simulated T4.
//! let result = Pruner::builder(GpuSpec::t4())
//!     .workload(Workload::matmul(1, 512, 512, 512))
//!     .trials(200)
//!     .build()
//!     .tune();
//! println!("best latency: {:.3} ms", result.best_latency_s * 1e3);
//! ```
//!
//! End-to-end networks, offline pre-training, cross-platform transfer and
//! every paper experiment are exercised by the `examples/` directory and
//! the `pruner-bench` harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model_io;

pub use pruner_cost as cost;
pub use pruner_dataset as dataset;
pub use pruner_exec as exec;
pub use pruner_features as features;
pub use pruner_gpu as gpu;
pub use pruner_ir as ir;
pub use pruner_nn as nn;
pub use pruner_psa as psa;
pub use pruner_serve as serve;
pub use pruner_sketch as sketch;
pub use pruner_store as store;
pub use pruner_trace as trace;
pub use pruner_tuner as tuner;

pub use pruner_tuner::fleet::{Fleet, FleetConfig, FleetResult, FleetRun, FleetStatus};

use pruner_cost::{CostModel, ModelKind, PacmModel};
use pruner_exec::CpuExec;
use pruner_gpu::{Backend, GpuSpec, Simulator};
use pruner_ir::{Network, Workload};
use pruner_psa::PsaConfig;
use pruner_tuner::{ModelSetup, Tuner, TunerConfig, TuningResult};

/// High-level entry point: configure a tuning campaign fluently.
///
/// Wraps [`tuner::Tuner`] with the paper's defaults (PSA pruning on,
/// PaCM trained online, 2,000 trials). Campaigns measure through the
/// analytical simulator by default; [`PrunerBuilder::build_cpu`] swaps in
/// the executable CPU backend ([`exec::CpuExec`]) with no other change to
/// the pipeline.
pub struct Pruner<B: Backend = Simulator> {
    tuner: Tuner<B>,
}

impl Pruner {
    /// Starts a builder for the given platform.
    pub fn builder(spec: GpuSpec) -> PrunerBuilder {
        PrunerBuilder {
            spec,
            config: TunerConfig::default(),
            psa_config: PsaConfig::default(),
            setup: Setup::Fresh(ModelKind::Pacm),
            tasks: Vec::new(),
            checkpoint: None,
            recorder: None,
            store: None,
            warm_start: true,
        }
    }

    /// Restores a simulator-backed campaign from a checkpoint file written
    /// during a previous (interrupted) run. The resumed campaign continues
    /// from the first unfinished round and produces a byte-identical result
    /// to the uninterrupted run.
    pub fn resume<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Pruner> {
        Ok(Pruner { tuner: Tuner::resume(path)? })
    }
}

impl Pruner<CpuExec> {
    /// Restores a campaign checkpointed by the executable CPU backend.
    /// Fails with `InvalidData` if the checkpoint was written by a
    /// different backend.
    pub fn resume_cpu<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Pruner<CpuExec>> {
        Ok(Pruner { tuner: Tuner::resume_backend(path)? })
    }
}

impl<B: Backend> Pruner<B> {
    /// Runs the campaign.
    pub fn tune(mut self) -> TuningResult {
        self.tuner.run()
    }

    /// Access to the underlying tuner (advanced instrumentation).
    pub fn tuner_mut(&mut self) -> &mut Tuner<B> {
        &mut self.tuner
    }

    /// Unwraps the underlying tuner — what a
    /// [`Supervisor`](tuner::Supervisor) factory hands to its worker
    /// thread to drive the campaign step by step.
    pub fn into_tuner(self) -> Tuner<B> {
        self.tuner
    }
}

#[allow(clippy::large_enum_variant)] // built once per campaign
enum Setup {
    Fresh(ModelKind),
    Offline(Box<dyn CostModel>),
    Mtl { pretrained: PacmModel, momentum: f32 },
}

/// Fluent configuration for [`Pruner`].
pub struct PrunerBuilder {
    spec: GpuSpec,
    config: TunerConfig,
    psa_config: PsaConfig,
    setup: Setup,
    tasks: Vec<(Workload, u64)>,
    checkpoint: Option<std::path::PathBuf>,
    recorder: Option<Box<dyn pruner_trace::Recorder>>,
    store: Option<std::path::PathBuf>,
    warm_start: bool,
}

impl PrunerBuilder {
    /// Adds a single operator task.
    pub fn workload(mut self, wl: Workload) -> Self {
        self.tasks.push((wl, 1));
        self
    }

    /// Adds every subgraph of a network.
    pub fn network(mut self, net: &Network) -> Self {
        for sg in net.subgraphs() {
            self.tasks.push((sg.workload.clone(), sg.weight));
        }
        self
    }

    /// Sets the measurement budget (trials = rounds × measurements/round).
    ///
    /// # Panics
    /// Panics if `trials` is smaller than one round's measurements.
    pub fn trials(mut self, trials: usize) -> Self {
        assert!(
            trials >= self.config.measure_per_round,
            "need at least {} trials",
            self.config.measure_per_round
        );
        self.config.rounds = trials / self.config.measure_per_round;
        self
    }

    /// Overrides the full tuner configuration.
    pub fn config(mut self, config: TunerConfig) -> Self {
        self.config = config;
        self
    }

    /// Disables PSA pruning (the `w/o PSA` ablation).
    pub fn without_psa(mut self) -> Self {
        self.config.use_psa = false;
        self
    }

    /// Uses PSA with explicit penalty toggles (Table 4 ablations).
    pub fn psa_config(mut self, cfg: PsaConfig) -> Self {
        self.psa_config = cfg;
        self
    }

    /// Uses a specific online cost model instead of PaCM.
    pub fn model(mut self, kind: ModelKind) -> Self {
        self.setup = Setup::Fresh(kind);
        self
    }

    /// Starts from a pre-trained model, fine-tuned online without MTL
    /// (offline mode, as for the TensetMLP/TLP comparisons).
    pub fn offline_model(mut self, model: Box<dyn CostModel>) -> Self {
        self.setup = Setup::Offline(model);
        self
    }

    /// Enables Momentum Transfer Learning around a pre-trained PaCM with
    /// the paper's momentum (0.99).
    pub fn with_mtl(mut self, pretrained: PacmModel) -> Self {
        self.setup = Setup::Mtl { pretrained, momentum: 0.99 };
        self
    }

    /// Enables MTL with an explicit momentum (ablation).
    pub fn with_mtl_momentum(mut self, pretrained: PacmModel, momentum: f32) -> Self {
        self.setup = Setup::Mtl { pretrained, momentum };
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count of the candidate-evaluation pipeline.
    ///
    /// `1` runs the pipeline serially; results are bit-identical at any
    /// value (the default is the host's available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Injects deterministic hardware failures into the measurement path
    /// at the given composite rate (0 disables injection; the zero-fault
    /// campaign is bit-identical to a fault-unaware build).
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.config.fault_rate = rate;
        self
    }

    /// Sets the retry budget for failed measurement attempts.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Enables crash-safe checkpointing to the given file (written
    /// atomically every [`TunerConfig::checkpoint_every`] rounds).
    pub fn checkpoint<P: Into<std::path::PathBuf>>(mut self, path: P) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the checkpoint cadence, in rounds (0 disables periodic
    /// writes).
    pub fn checkpoint_every(mut self, rounds: usize) -> Self {
        self.config.checkpoint_every = rounds;
        self
    }

    /// Stops the campaign after this many rounds — the "kill" half of
    /// kill-and-resume testing.
    pub fn halt_after(mut self, rounds: usize) -> Self {
        self.config.halt_after = Some(rounds);
        self
    }

    /// Attaches a persistent tuning-record store (append-only JSONL,
    /// see `docs/STORE_FORMAT.md`). Every measurement verdict of the
    /// campaign — successes and quarantined failures alike — is appended
    /// to the file, and with warm start enabled (the default) records
    /// from previous campaigns on the same platform pre-seed the
    /// measurement cache and pre-train the cost model before round 0.
    /// A missing file is created on the first flush.
    pub fn store<P: Into<std::path::PathBuf>>(mut self, path: P) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Toggles cross-campaign warm start for an attached [`store`]
    /// (default `true`). With warm start off the store is record-only:
    /// the campaign is bit-identical to one without a store.
    ///
    /// [`store`]: PrunerBuilder::store
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Installs a trace [`Recorder`](pruner_trace::Recorder) on the
    /// campaign — typically a cloned [`trace::TraceHandle`], whose other
    /// clone the caller keeps to render the JSONL trace or the
    /// end-of-campaign report afterwards. The recorder only observes: a
    /// traced campaign is bit-identical to an untraced one.
    pub fn recorder(mut self, rec: Box<dyn pruner_trace::Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Builds a simulator-backed tuner.
    ///
    /// # Panics
    /// Panics if no workload or network was added, or if an attached
    /// store file exists but cannot be read.
    pub fn build(self) -> Pruner {
        let backend = Simulator::new(self.spec.clone());
        self.build_with(backend)
    }

    /// Builds a tuner measuring on the executable CPU backend: candidate
    /// programs are actually run (see [`exec::CpuExec`]) and latency is
    /// wall-clock time, while sampling, PSA pruning, the cost model and
    /// the store/checkpoint plumbing stay exactly as in [`build`].
    ///
    /// [`build`]: PrunerBuilder::build
    ///
    /// # Panics
    /// Same conditions as [`build`](PrunerBuilder::build).
    pub fn build_cpu(self) -> Pruner<CpuExec> {
        let backend = CpuExec::new(self.spec.clone());
        self.build_with(backend)
    }

    /// [`build_cpu`](PrunerBuilder::build_cpu) with explicit executor
    /// configuration (thread cap, timer settings).
    pub fn build_cpu_config(self, cfg: pruner_exec::CpuExecConfig) -> Pruner<CpuExec> {
        let backend = CpuExec::with_config(self.spec.clone(), cfg);
        self.build_with(backend)
    }

    fn build_with<B: Backend>(self, backend: B) -> Pruner<B> {
        assert!(!self.tasks.is_empty(), "add a workload or network before building");
        let setup = match self.setup {
            Setup::Fresh(kind) => ModelSetup::Fresh(kind),
            Setup::Offline(model) => ModelSetup::Offline(model),
            Setup::Mtl { pretrained, momentum } => ModelSetup::Mtl { pretrained, momentum },
        };
        let mut tuner =
            Tuner::with_backend(self.spec, self.config, setup, self.psa_config, backend);
        for (wl, weight) in self.tasks {
            tuner.add_task(wl, weight);
        }
        if let Some(path) = self.checkpoint {
            tuner.set_checkpoint_path(path);
        }
        if let Some(rec) = self.recorder {
            tuner.set_recorder(rec);
        }
        if let Some(path) = self.store {
            let store = store::Store::open(&path)
                .unwrap_or_else(|e| panic!("cannot open store {}: {e}", path.display()));
            tuner.set_store(store, self.warm_start);
        }
        Pruner { tuner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_quick_campaign_improves() {
        let result = Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 256, 256, 256))
            .config(TunerConfig::quick())
            .seed(1)
            .build()
            .tune();
        let first = result.curve.points().first().unwrap().best_latency_s;
        assert!(result.best_latency_s <= first);
    }

    #[test]
    fn builder_supports_networks() {
        let net = ir::zoo::bert_tiny(1, 64);
        let mut cfg = TunerConfig::quick();
        cfg.rounds = 4;
        let p = Pruner::builder(GpuSpec::t4()).network(&net).config(cfg).build();
        let result = p.tune();
        assert!(result.per_task_best.len() > 5);
    }

    #[test]
    #[should_panic(expected = "add a workload")]
    fn empty_builder_panics() {
        let _ = Pruner::builder(GpuSpec::t4()).build();
    }

    #[test]
    fn threads_is_clamped_to_one() {
        let p = Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 64, 64, 64))
            .threads(0);
        assert_eq!(p.config.threads, 1);
    }

    #[test]
    fn campaign_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            Pruner::builder(GpuSpec::t4())
                .workload(Workload::matmul(1, 256, 256, 256))
                .config(TunerConfig { rounds: 3, ..TunerConfig::quick() })
                .seed(5)
                .threads(threads)
                .build()
                .tune()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.best_latency_s, parallel.best_latency_s);
        assert_eq!(serial.curve, parallel.curve);
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn builder_store_records_and_warm_starts() {
        let dir = std::env::temp_dir().join(format!("pruner-facade-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let _ = std::fs::remove_file(&path);
        let run = |warm: bool| {
            Pruner::builder(GpuSpec::t4())
                .workload(Workload::matmul(1, 256, 256, 256))
                .config(TunerConfig::quick())
                .seed(3)
                .store(&path)
                .warm_start(warm)
                .build()
                .tune()
        };
        let cold = run(false);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), cold.stats.trials as usize);
        let warm = run(true);
        assert!(warm.stats.trials <= cold.stats.trials);
        assert!(warm.best_latency_s <= cold.best_latency_s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_cpu_runs_a_tiny_campaign() {
        let cfg = exec::CpuExecConfig {
            threads: 2,
            timer: exec::TimerConfig {
                samples: 2,
                min_window_s: 1e-5,
                ..exec::TimerConfig::default()
            },
        };
        let result = Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 48, 48, 48))
            .config(TunerConfig { rounds: 2, ..TunerConfig::quick() })
            .seed(7)
            .build_cpu_config(cfg)
            .tune();
        assert!(result.best_latency_s > 0.0, "wall-clock latency must be positive");
        // 2 rounds x 4 measures, plus the per-task warm-up measurement.
        assert!(
            result.stats.trials >= 1 && result.stats.trials <= 9,
            "trial count out of range: {}",
            result.stats.trials
        );
    }

    #[test]
    fn trials_sets_rounds() {
        let p = Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 64, 64, 64))
            .config(TunerConfig::quick())
            .trials(40);
        assert_eq!(p.config.rounds, 10);
    }
}
