//! Saving and loading trained cost models.
//!
//! Pre-trained models are the unit of cross-platform transfer (the paper's
//! "pre-trained on the NVIDIA K80-6M dataset" artifact). These helpers
//! serialize any of the concrete model types (`PacmModel`,
//! `TensetMlpModel`, `TlpModel`, `AnsorModel`, `XgbModel`) to JSON and
//! back. Optimizer state (Adam moments and step count) rides along — the
//! campaign checkpointer needs it for byte-identical resume — but files
//! written without it still load, falling back to fresh moments.
//!
//! # Example
//!
//! ```no_run
//! use pruner::cost::PacmModel;
//! use pruner::model_io;
//!
//! let model = PacmModel::new(0);
//! model_io::save_json(&model, "pacm-k80.json")?;
//! let restored: PacmModel = model_io::load_json("pacm-k80.json")?;
//! # Ok::<(), std::io::Error>(())
//! ```

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io;
use std::path::Path;

/// Serializes a model (or any serializable artifact) to pretty JSON.
///
/// # Errors
/// Propagates filesystem and serialization errors.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(io::BufWriter::new(file), value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Loads a model saved by [`save_json`].
///
/// # Errors
/// Propagates filesystem and deserialization errors.
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> io::Result<T> {
    let file = std::fs::File::open(path)?;
    serde_json::from_reader(io::BufReader::new(file))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, PacmModel, Sample, TensetMlpModel, XgbModel};
    use crate::gpu::{GpuSpec, Simulator};
    use crate::ir::Workload;
    use crate::sketch::Program;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn samples(n: usize) -> Vec<Sample> {
        let sim = Simulator::new(GpuSpec::t4());
        let limits = GpuSpec::t4().limits();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let wl = Workload::matmul(1, 256, 256, 256);
        (0..n)
            .map(|_| {
                let p = Program::sample(&wl, &limits, &mut rng);
                let lat = sim.latency(&p);
                Sample::labeled(&p, lat, 0)
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pruner-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn pacm_roundtrip_preserves_predictions() {
        let data = samples(24);
        let mut model = PacmModel::new(3);
        model.fit(&data, 8);
        let path = tmp("pacm.json");
        save_json(&model, &path).unwrap();
        let restored: PacmModel = load_json(&path).unwrap();
        assert_eq!(model.predict(&data), restored.predict(&data));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tenset_and_xgb_roundtrip() {
        let data = samples(24);
        let mut m1 = TensetMlpModel::new(3);
        m1.fit(&data, 5);
        let p1 = tmp("tenset.json");
        save_json(&m1, &p1).unwrap();
        let r1: TensetMlpModel = load_json(&p1).unwrap();
        assert_eq!(m1.predict(&data), r1.predict(&data));

        let mut m2 = XgbModel::new();
        m2.fit(&data, 1);
        let p2 = tmp("xgb.json");
        save_json(&m2, &p2).unwrap();
        let r2: XgbModel = load_json(&p2).unwrap();
        assert_eq!(m2.predict(&data), r2.predict(&data));
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let r: io::Result<PacmModel> = load_json("/definitely/not/here.json");
        assert!(r.is_err());
    }
}
