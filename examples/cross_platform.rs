//! Cross-platform transfer: pre-train PaCM on a synthetic K80 dataset,
//! then tune BERT-base on a simulated A100 with and without Momentum
//! Transfer Learning — the paper's headline online-mode experiment.
//!
//! ```text
//! cargo run --release --example cross_platform
//! ```

use pruner::cost::ModelKind;
use pruner::dataset::Dataset;
use pruner::gpu::GpuSpec;
use pruner::ir::zoo;
use pruner::tuner::{pretrain_pacm, TunerConfig};
use pruner::Pruner;

fn main() {
    // 1. Build the offline "TensetGPUs K80" stand-in and pre-train PaCM.
    println!("generating K80 offline dataset...");
    let k80_data = Dataset::generate(
        &GpuSpec::k80(),
        &[zoo::resnet50(1), zoo::mobilenet_v2(1), zoo::bert_tiny(1, 128)],
        48,
        0,
    );
    println!(
        "  {} subgraphs, {} labeled programs on {}",
        k80_data.entries.len(),
        k80_data.num_programs(),
        k80_data.platform
    );
    println!("pre-training PaCM on K80 data...");
    let pretrained = pretrain_pacm(&k80_data.to_samples(), 16, 0);

    // 2. Tune BERT-base on A100 three ways.
    let net = zoo::bert_base(1, 128);
    let cfg = TunerConfig {
        rounds: 50,
        space_size: 256,
        target_pool: 1024,
        ..TunerConfig::default()
    };

    println!("\ntuning {} on {}:\n", net.name(), GpuSpec::a100());
    let mut results = Vec::new();
    for label in ["Ansor", "Pruner w/o MTL", "Pruner (MTL)"] {
        let builder = Pruner::builder(GpuSpec::a100()).network(&net).seed(11);
        let builder = match label {
            "Ansor" => {
                let mut c = cfg;
                c.use_psa = false;
                builder.config(c).model(ModelKind::Ansor)
            }
            "Pruner w/o MTL" => builder.config(cfg).model(ModelKind::Pacm),
            _ => builder.config(cfg).with_mtl(pretrained.clone()),
        };
        let result = builder.build().tune();
        println!(
            "  {label:<16} e2e {:>8.3} ms  search {:>6.0} s",
            result.best_latency_s * 1e3,
            result.stats.total_s()
        );
        results.push(result);
    }

    // 3. Search-time speedups at Ansor-parity (the Figure 10/14 readout).
    let ansor = &results[0];
    for (label, r) in ["Pruner w/o MTL", "Pruner (MTL)"].iter().zip(&results[1..]) {
        match r.curve.time_to_reach(ansor.best_latency_s) {
            Some(t) => println!(
                "\n{label} reaches Ansor-final latency in {t:.0} s ({:.2}x speedup)",
                ansor.stats.total_s() / t
            ),
            None => println!("\n{label} did not reach Ansor parity within its budget"),
        }
    }
}
