//! End-to-end network tuning: ResNet-50 on a simulated TITAN V, Pruner
//! versus the Ansor baseline under the same measurement budget.
//!
//! ```text
//! cargo run --release --example end_to_end
//! ```

use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::zoo;
use pruner::tuner::TunerConfig;
use pruner::Pruner;

fn main() {
    let net = zoo::resnet50(1);
    println!("network  : {net}");
    println!("platform : {}", GpuSpec::titan_v());
    println!("total    : {:.2} GFLOPs/inference\n", net.total_flops() / 1e9);

    // A reduced budget so the example finishes in seconds; the bench
    // harness runs the paper's full 2,000 trials.
    let cfg = TunerConfig {
        rounds: 60,
        space_size: 256,
        target_pool: 1024,
        ..TunerConfig::default()
    };

    let mut report = Vec::new();
    for (label, kind, use_psa) in [
        ("Ansor (no PSA, MLP model)", ModelKind::Ansor, false),
        ("Pruner w/o MTL (PSA + PaCM)", ModelKind::Pacm, true),
    ] {
        let mut c = cfg;
        c.use_psa = use_psa;
        let result = Pruner::builder(GpuSpec::titan_v())
            .network(&net)
            .config(c)
            .model(kind)
            .seed(7)
            .build()
            .tune();
        println!(
            "{label:<30} e2e latency {:>8.3} ms  search {:>6.0} s  ({} trials)",
            result.best_latency_s * 1e3,
            result.stats.total_s(),
            result.stats.trials
        );
        report.push((label, result));
    }

    let (_, ansor) = &report[0];
    let (_, pruner) = &report[1];
    println!(
        "\nPruner reaches Ansor's final latency {}",
        match pruner.curve.time_to_reach(ansor.best_latency_s) {
            Some(t) => format!(
                "after {t:.0} s — a {:.2}x search-time speedup",
                ansor.stats.total_s() / t
            ),
            None => "never (increase the budget)".to_string(),
        }
    );

    println!("\nheaviest tuned subgraphs (Pruner):");
    let mut tasks = pruner.per_task_best.clone();
    tasks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (wl, lat) in tasks.iter().take(8) {
        println!("  {:<52} {:>8.3} ms", wl.to_string(), lat * 1e3);
    }
}
