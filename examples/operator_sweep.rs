//! Operator sweep: tune a slice of the depthwise-convolution suite on a
//! simulated TITAN V and compare against the vendor-library oracle —
//! the per-operator view behind Figure 7.
//!
//! ```text
//! cargo run --release --example operator_sweep
//! ```

use pruner::gpu::{vendor, GpuSpec, Simulator};
use pruner::ir::suites;
use pruner::sketch::Program;
use pruner::tuner::TunerConfig;
use pruner::Pruner;

fn main() {
    let spec = GpuSpec::titan_v();
    let sim = Simulator::new(spec.clone());
    let ops = suites::dwconv_suite();

    let cfg = TunerConfig {
        rounds: 20,
        space_size: 192,
        target_pool: 768,
        ..TunerConfig::default()
    };

    println!("platform: {spec}");
    println!(
        "\n{:<42}{:>12}{:>12}{:>12}{:>9}",
        "operator", "default", "vendor", "pruner", "vs vend"
    );
    let mut pruner_wins = 0;
    for wl in ops.iter().take(8) {
        let fallback = sim.latency(&Program::fallback(wl));
        let vend = vendor::vendor_latency(&spec, wl);
        let result = Pruner::builder(spec.clone())
            .workload(wl.clone())
            .config(cfg)
            .seed(3)
            .build()
            .tune();
        let tuned = result.best_latency_s;
        if tuned < vend {
            pruner_wins += 1;
        }
        println!(
            "{:<42}{:>9.3} ms{:>9.3} ms{:>9.3} ms{:>8.2}x",
            wl.to_string(),
            fallback * 1e3,
            vend * 1e3,
            tuned * 1e3,
            vend / tuned
        );
    }
    println!("\nPruner beats the vendor library on {pruner_wins}/8 depthwise operators");
    println!("(depthwise convs are not a vendor-library strength — the paper's Figure 7");
    println!(" shows the same pattern, with vendor wins concentrated on regular 3x3 convs)");
}
