//! Quickstart: tune one GEMM on a simulated T4 and compare the result
//! against the untuned fallback schedule, the vendor library and the
//! roofline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pruner::gpu::{vendor, GpuSpec, Simulator};
use pruner::ir::Workload;
use pruner::sketch::Program;
use pruner::tuner::TunerConfig;
use pruner::Pruner;

fn main() {
    let spec = GpuSpec::t4();
    let sim = Simulator::new(spec.clone());

    // A BERT-base feed-forward GEMM: [128 x 3072] x [3072 x 768].
    let wl = Workload::matmul(1, 128, 3072, 768);
    println!("workload : {wl}");
    println!("platform : {spec}");

    let fallback = sim.latency(&Program::fallback(&wl));
    let roofline = sim.roofline(&wl);
    let cudnn = vendor::vendor_latency(&spec, &wl);

    // 40 rounds x 10 measurements = 400 trials with PSA + PaCM.
    let cfg = TunerConfig { rounds: 40, ..TunerConfig::default() };
    let result = Pruner::builder(spec).workload(wl).config(cfg).seed(0).build().tune();

    println!("\n{:<28}{:>12}", "schedule", "latency");
    println!("{:<28}{:>9.3} ms", "default (untuned)", fallback * 1e3);
    println!("{:<28}{:>9.3} ms", "vendor library (cuDNN-like)", cudnn * 1e3);
    println!("{:<28}{:>9.3} ms", "Pruner, 400 trials", result.best_latency_s * 1e3);
    println!("{:<28}{:>9.3} ms", "roofline bound", roofline * 1e3);

    println!("\nspeedup over default : {:.2}x", fallback / result.best_latency_s);
    println!("roofline efficiency  : {:.0}%", 100.0 * roofline / result.best_latency_s);
    println!(
        "search cost          : {} trials, {:.0} simulated seconds",
        result.stats.trials,
        result.stats.total_s()
    );

    // The tuning curve, every five rounds.
    println!("\ntuning curve (trials -> best ms):");
    for p in result.curve.points().iter().step_by(5) {
        println!("  {:>5} trials  {:>8.3} ms", p.trials, p.best_latency_s * 1e3);
    }
}
