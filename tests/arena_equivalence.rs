//! Integration: the struct-of-arrays candidate arena is a bit-exact drop-in
//! for the legacy `Vec<Program>` pipeline.
//!
//! Every stage of a proposal round — generation, fingerprint dedup, PSA
//! penalty estimation, pruning, and featurization — runs through
//! [`pruner::sketch::CandidateArena`] columns. These tests drive both paths
//! over a zoo of workloads × pool sizes × thread counts and demand
//! `to_bits`-level equality, plus scalar-vs-dispatched equality for the
//! SIMD column kernels.
//!
//! CI's arena-smoke step reruns this suite with `THREADS=1` and `THREADS=4`
//! to pin thread-count invariance of the arena path specifically.

use proptest::prelude::*;
use pruner::cost::Sample;
use pruner::features::{
    flow_features, flow_features_arena, set_reference_features, stmt_features,
    stmt_features_arena, tlp_tokens, tlp_tokens_arena,
};
use pruner::gpu::GpuSpec;
use pruner::ir::{EwKind, Workload};
use pruner::psa::{set_reference_columns, Psa, PsaConfig};
use pruner::sketch::{evolve, HardwareLimits, Program, WorkloadCtx};
use std::sync::Arc;

/// Thread counts under test: `THREADS` env override (CI smoke) or {1, 4}.
fn thread_counts() -> Vec<usize> {
    match std::env::var("THREADS") {
        Ok(v) => vec![v.parse().expect("THREADS must be an integer")],
        Err(_) => vec![1, 4],
    }
}

fn zoo() -> Vec<Workload> {
    vec![
        Workload::matmul(1, 512, 512, 512),
        Workload::conv2d(1, 64, 56, 56, 64, 3, 1, 1),
        Workload::elementwise(EwKind::Gelu, 1 << 18),
        Workload::reduction(2048, 768),
    ]
}

/// Legacy reference: sample → dedup-by-fingerprint population.
fn legacy_pool(wl: &Workload, n: usize, seed: u64, threads: usize) -> Vec<Program> {
    evolve::init_population_par(wl, n, &HardwareLimits::default(), seed, 0, threads)
}

fn arena_pool(
    wl: &Workload,
    n: usize,
    seed: u64,
    threads: usize,
) -> pruner::sketch::CandidateArena {
    let ctx = Arc::new(WorkloadCtx::new(wl));
    let mut arena = evolve::init_arena_par(&ctx, n, &HardwareLimits::default(), seed, 0, threads);
    arena.ensure_stats();
    arena
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation: materializing the arena reproduces the legacy population
    /// program for program, at every thread count.
    #[test]
    fn generation_is_bit_identical(
        wl_idx in 0usize..4,
        n in 8usize..96,
        seed in 0u64..1_000,
    ) {
        let wl = &zoo()[wl_idx];
        for threads in thread_counts() {
            let legacy = legacy_pool(wl, n, seed, threads);
            let arena = arena_pool(wl, n, seed, threads);
            prop_assert_eq!(arena.len(), legacy.len());
            prop_assert_eq!(&arena.programs(), &legacy);
            for (i, p) in legacy.iter().enumerate() {
                prop_assert_eq!(arena.fingerprint(i), p.fingerprint());
            }
        }
    }

    /// PSA: columnar penalty estimates and the pruned shortlist match the
    /// legacy per-program path bit for bit.
    #[test]
    fn psa_estimates_and_prune_are_bit_identical(
        wl_idx in 0usize..4,
        n in 8usize..96,
        keep_frac in 0.1f64..1.0,
        seed in 0u64..1_000,
    ) {
        let wl = &zoo()[wl_idx];
        for cfg in [PsaConfig::default(), PsaConfig::without_compute()] {
            let psa = Psa::with_config(GpuSpec::t4(), cfg);
            for threads in thread_counts() {
                let legacy = legacy_pool(wl, n, seed, threads);
                let arena = arena_pool(wl, n, seed, threads);
                let legacy_scores = psa.estimate_batch(&legacy, threads);
                let arena_scores = psa.estimate_arena(&arena, threads);
                let lbits: Vec<u64> = legacy_scores.iter().map(|x| x.to_bits()).collect();
                let abits: Vec<u64> = arena_scores.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(lbits, abits);
                let keep = ((legacy.len() as f64) * keep_frac).ceil() as usize;
                let legacy_kept = psa.prune_par(legacy.clone(), keep, threads);
                let kept_idx = psa.prune_arena(&arena, keep, threads);
                let arena_kept: Vec<Program> =
                    kept_idx.iter().map(|&i| arena.program(i)).collect();
                prop_assert_eq!(arena_kept, legacy_kept);
            }
        }
    }

    /// Featurization: the arena column stacks equal the legacy per-program
    /// extractors bit for bit, and `Sample::from_arena` equals
    /// `Sample::unlabeled` on the materialized program.
    #[test]
    fn features_are_bit_identical(
        wl_idx in 0usize..4,
        n in 8usize..64,
        seed in 0u64..1_000,
    ) {
        let wl = &zoo()[wl_idx];
        for threads in thread_counts() {
            let arena = arena_pool(wl, n, seed, threads);
            let stmt = stmt_features_arena(&arena, threads);
            let flow = flow_features_arena(&arena, threads);
            let tlp = tlp_tokens_arena(&arena, threads);
            let per = (stmt.len() / arena.len(), flow.len() / arena.len(), tlp.len() / arena.len());
            for i in 0..arena.len() {
                let p = arena.program(i);
                let stats = p.stats();
                let l_stmt: Vec<f32> = stmt_features(&stats).into_iter().flatten().collect();
                let l_flow: Vec<f32> = flow_features(&stats).into_iter().flatten().collect();
                let l_tlp: Vec<f32> = tlp_tokens(&p).into_iter().flatten().collect();
                prop_assert_eq!(bits(&stmt[i * per.0..(i + 1) * per.0]), bits(&l_stmt));
                prop_assert_eq!(bits(&flow[i * per.1..(i + 1) * per.1]), bits(&l_flow));
                prop_assert_eq!(bits(&tlp[i * per.2..(i + 1) * per.2]), bits(&l_tlp));
                let s = Sample::from_arena(&arena, i, 0);
                let l = Sample::unlabeled(&p, 0);
                prop_assert_eq!(bits(&s.stmt), bits(&l.stmt));
                prop_assert_eq!(bits(&s.flow), bits(&l.flow));
                prop_assert_eq!(bits(&s.tokens), bits(&l.tokens));
            }
        }
    }
}

/// The dispatched (AVX2 where available) column kernels produce the same
/// bits as the forced-scalar reference path, end to end through PSA and
/// feature extraction.
#[test]
fn simd_kernels_match_scalar_reference_bitwise() {
    let psa = Psa::new(GpuSpec::t4());
    for wl in zoo() {
        let arena = arena_pool(&wl, 48, 11, 2);
        let (dispatched_psa, dispatched_stmt, dispatched_flow, dispatched_tlp) = (
            psa.estimate_arena(&arena, 2),
            stmt_features_arena(&arena, 2),
            flow_features_arena(&arena, 2),
            tlp_tokens_arena(&arena, 2),
        );
        set_reference_columns(true);
        set_reference_features(true);
        let (scalar_psa, scalar_stmt, scalar_flow, scalar_tlp) = (
            psa.estimate_arena(&arena, 2),
            stmt_features_arena(&arena, 2),
            flow_features_arena(&arena, 2),
            tlp_tokens_arena(&arena, 2),
        );
        set_reference_columns(false);
        set_reference_features(false);
        let d: Vec<u64> = dispatched_psa.iter().map(|x| x.to_bits()).collect();
        let s: Vec<u64> = scalar_psa.iter().map(|x| x.to_bits()).collect();
        assert_eq!(d, s, "PSA columns diverge from scalar reference");
        assert_eq!(bits(&dispatched_stmt), bits(&scalar_stmt));
        assert_eq!(bits(&dispatched_flow), bits(&scalar_flow));
        assert_eq!(bits(&dispatched_tlp), bits(&scalar_tlp));
    }
}
