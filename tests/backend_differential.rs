//! Integration: the simulator-vs-reality differential harness.
//!
//! The `Backend` trait made the measurement meter swappable; this suite
//! pins down both sides of that swap:
//!
//! * the **sim** path through the generic plumbing is byte-identical to
//!   the pre-trait golden campaign (`tests/golden/quick_matmul_t4.json`),
//!   and its trace jitter stays confined to `host_`-prefixed fields;
//! * the **cpu** path (`pruner-exec`) completes real campaigns end to
//!   end — store recording, checkpoint/resume, backend tagging — and the
//!   simulator's cost ordering agrees with measured wall time across a
//!   GEMM size sweep (rank correlation floor).
//!
//! The deep schedule-level fidelity study (per-workload Spearman/Kendall/
//! top-k over sampled candidates) lives in `benches/bench6.rs`; see
//! `docs/FIDELITY.md`.

mod common;

use common::best_of;
use pruner::exec::{stats, CpuExec, CpuExecConfig, TimerConfig};
use pruner::gpu::{Backend, GpuSpec, Simulator};
use pruner::ir::Workload;
use pruner::trace::{mask_host_fields, TraceHandle};
use pruner::tuner::TunerConfig;
use pruner::Pruner;
use serde::Serialize;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/quick_matmul_t4.json");

/// Mirrors the golden record layout of `tests/golden.rs`.
#[derive(Serialize)]
struct GoldenRecord {
    curve: pruner::tuner::TuningCurve,
    best_latency_s: f64,
    trials: u64,
}

/// A fast executor config for smoke campaigns: tiny timing windows, two
/// threads (CI runners are share-everything boxes).
fn smoke_exec_config() -> CpuExecConfig {
    CpuExecConfig {
        threads: 2,
        timer: TimerConfig { samples: 2, min_window_s: 1e-5, ..TimerConfig::default() },
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pruner-backend-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The sim campaign through the backend-generic plumbing must reproduce
/// the golden curve written before the `Backend` trait existed, byte for
/// byte. (The `golden` suite guards the same file; this copy documents
/// that the *trait refactor specifically* is invisible to the sim path.)
#[test]
fn sim_campaign_is_byte_identical_to_pre_trait_golden() {
    let result = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 512, 512, 512))
        .config(TunerConfig::quick())
        .seed(42)
        .build()
        .tune();
    let record = GoldenRecord {
        best_latency_s: result.best_latency_s,
        trials: result.stats.trials,
        curve: result.curve,
    };
    let actual = serde_json::to_string_pretty(&record).expect("record serializes");
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file from the pre-trait tuner must exist");
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "the Backend-trait refactor changed the simulator campaign"
    );
}

/// Two identical traced sim campaigns may differ only in `host_*` fields:
/// the generic measurer must not have introduced any other
/// nondeterministic trace value.
#[test]
fn sim_trace_jitter_is_confined_to_host_fields() {
    let run = || {
        let trace = TraceHandle::new();
        Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 256, 256, 256))
            .config(TunerConfig { rounds: 3, ..TunerConfig::quick() })
            .seed(11)
            .recorder(Box::new(trace.clone()))
            .build()
            .tune();
        trace.to_jsonl()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty(), "campaign must emit trace events");
    assert_eq!(mask_host_fields(&a), mask_host_fields(&b));
}

/// A tiny CpuExec campaign must complete, improve monotonically, and tag
/// every store record with the `cpu` backend.
#[test]
fn cpu_smoke_campaign_completes_and_records_tagged_verdicts() {
    let dir = tmp_dir("store");
    let store_path = dir.join("records.jsonl");
    let result = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 48, 48, 48))
        .config(TunerConfig { rounds: 2, ..TunerConfig::quick() })
        .seed(21)
        .store(&store_path)
        .build_cpu_config(smoke_exec_config())
        .tune();

    assert!(result.best_latency_s > 0.0);
    let lats: Vec<f64> = result.curve.points().iter().map(|p| p.best_latency_s).collect();
    assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12), "curve must stay monotone");

    let store = pruner::store::Store::open(&store_path).expect("store re-opens");
    assert_eq!(store.len() as u64, result.stats.trials, "every trial is recorded");
    assert!(
        store.records().iter().all(|r| r.backend == "cpu"),
        "cpu campaigns must tag records with their backend"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Kill-and-resume on the cpu backend: a halted campaign's checkpoint
/// restores through `Pruner::resume_cpu` and runs to completion, while
/// the sim-typed `Pruner::resume` refuses the checkpoint.
#[test]
fn cpu_checkpoint_resumes_on_cpu_and_is_rejected_by_sim() {
    let dir = tmp_dir("ckpt");
    let ckpt = dir.join("campaign.json");
    let builder = || {
        Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 48, 48, 48))
            .config(TunerConfig { rounds: 3, ..TunerConfig::quick() })
            .seed(22)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
    };
    builder().halt_after(1).build_cpu_config(smoke_exec_config()).tune();
    assert!(ckpt.exists(), "halted campaign must leave a checkpoint");

    match Pruner::resume(&ckpt) {
        Ok(_) => panic!("sim resume must reject a cpu checkpoint"),
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
    }

    let resumed = Pruner::resume_cpu(&ckpt).expect("cpu resume").tune();
    assert!(resumed.best_latency_s > 0.0);
    assert!(resumed.curve.points().len() >= 3, "resumed campaign finishes all rounds");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Records from both backends coexist in one store file and never
/// cross-contaminate a replay.
#[test]
fn one_store_keeps_sim_and_cpu_records_apart() {
    let dir = tmp_dir("mixed");
    let store_path = dir.join("records.jsonl");
    let wl = Workload::matmul(1, 48, 48, 48);
    let cfg = || TunerConfig { rounds: 2, ..TunerConfig::quick() };
    // Warm start off: both campaigns record without replaying, so the
    // file ends up holding each campaign's full verdict history.
    Pruner::builder(GpuSpec::t4())
        .workload(wl.clone())
        .config(cfg())
        .seed(23)
        .store(&store_path)
        .warm_start(false)
        .build()
        .tune();
    Pruner::builder(GpuSpec::t4())
        .workload(wl.clone())
        .config(cfg())
        .seed(23)
        .store(&store_path)
        .warm_start(false)
        .build_cpu_config(smoke_exec_config())
        .tune();

    let store = pruner::store::Store::open(&store_path).expect("store re-opens");
    let sim_count = store.records().iter().filter(|r| r.backend == "sim").count();
    let cpu_count = store.records().iter().filter(|r| r.backend == "cpu").count();
    assert!(sim_count > 0 && cpu_count > 0, "both campaigns recorded");

    let spec_fp = GpuSpec::t4().fingerprint();
    let wl_fps: std::collections::HashSet<String> = std::iter::once(wl.key()).collect();
    let replay = store.replay_backend("cpu", &spec_fp, &wl_fps);
    assert_eq!(replay.records.len(), cpu_count);
    assert_eq!(replay.backend_mismatches, sim_count);
    assert!(replay.records.iter().all(|r| r.backend == "cpu"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The core fidelity claim at workload granularity: across a GEMM size
/// sweep, the simulator's best-of-sample latencies and real measured wall
/// times must agree in rank (Spearman ρ ≥ 0.5). Sizes are spaced so the
/// ordering signal dwarfs CI timing noise.
#[test]
fn simulator_orders_gemm_sizes_like_real_execution() {
    let sizes = [32u64, 48, 64, 96, 128, 160, 192];
    let sim = Simulator::new(GpuSpec::t4());
    let cpu = CpuExec::with_config(
        GpuSpec::t4(),
        CpuExecConfig {
            threads: 2,
            timer: TimerConfig { samples: 5, min_window_s: 1e-4, ..TimerConfig::default() },
        },
    );
    let mut sim_lat = Vec::new();
    let mut cpu_lat = Vec::new();
    for &s in &sizes {
        let wl = Workload::matmul(1, s, s, s);
        sim_lat.push(best_of(&sim, &wl, 8, s));
        // One fixed program per size keeps the cpu cost bounded; rank
        // order across sizes is what is under test.
        cpu_lat.push(cpu.latency(&pruner::sketch::Program::fallback(&wl)));
    }
    let rho = stats::spearman(&sim_lat, &cpu_lat);
    let tau = stats::kendall_tau(&sim_lat, &cpu_lat);
    assert!(
        rho >= 0.5,
        "simulator and wall clock disagree on GEMM size ordering: ρ = {rho:.2} \
         (sim {sim_lat:?}, cpu {cpu_lat:?})"
    );
    assert!(tau > 0.0, "Kendall τ must at least be positive, got {tau:.2}");
}
