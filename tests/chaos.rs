//! End-to-end chaos harness: kill-at-random-point soak, watchdog,
//! injected I/O faults, and deadline parking — all supervised.
//!
//! The contract under test is the strongest form of the repo's
//! determinism guarantee: a campaign killed at *any* state-machine step,
//! resumed under the [`Supervisor`], must reproduce the uninterrupted
//! campaign byte-for-byte (result JSON *and* store file), with every
//! fault surfacing as a typed [`CampaignFault`] and every restart visible
//! as `supervisor.*` trace records in the end-of-campaign report.
//!
//! The campaign seed honours `PRUNER_CHAOS_SEED` so CI can soak a seed
//! matrix without recompiling; the golden is recomputed per seed, so any
//! seed must pass.

use pruner::cost::ModelKind;
use pruner::gpu::{GpuSpec, Simulator, StallBackend, StallControl};
use pruner::ir::Workload;
use pruner::psa::PsaConfig;
use pruner::store::{IoFaultModel, IoFaults, Store};
use pruner::trace::TraceHandle;
use pruner::tuner::{
    CampaignFault, CampaignOutcome, CampaignStatus, Checkpoint, ModelSetup, Supervisor,
    SupervisorConfig, Tuner, TunerConfig, TuningResult,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pruner-chaos-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Campaign seed for the soak; CI sweeps this through a matrix.
fn chaos_seed() -> u64 {
    std::env::var("PRUNER_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn chaos_config() -> TunerConfig {
    TunerConfig {
        rounds: 6,
        measure_per_round: 3,
        space_size: 32,
        target_pool: 96,
        fault_rate: 0.15,
        checkpoint_every: 2,
        seed: chaos_seed(),
        ..TunerConfig::default()
    }
}

fn workload() -> Workload {
    Workload::matmul(1, 256, 256, 256)
}

/// A fresh simulator-backed campaign, optionally with a record-only
/// store attached (record-only keeps it bit-identical to storeless).
fn fresh(store_path: Option<&Path>) -> Tuner {
    let mut t = Tuner::new(GpuSpec::t4(), chaos_config(), ModelSetup::Fresh(ModelKind::Pacm));
    t.add_task(workload(), 1);
    if let Some(path) = store_path {
        t.set_store(Store::open(path).expect("store opens"), false);
    }
    t
}

fn as_json(r: &TuningResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

/// The uninterrupted golden: result plus (when a store is attached) the
/// flushed store file contents.
fn golden_run(store_path: Option<&Path>) -> TuningResult {
    let mut t = fresh(store_path);
    let result = t.run();
    if let Some(store) = t.store() {
        store.flush().expect("golden store flushes");
    }
    result
}

/// Total state-machine steps in the uninterrupted campaign.
fn total_steps() -> usize {
    let mut t = fresh(None);
    t.start();
    let mut steps = 0;
    while t.step() == CampaignStatus::Running {
        steps += 1;
    }
    steps + 1
}

/// The seeded kill-at-random-point soak. Each kill point steps a fresh
/// campaign exactly `k` transitions, parks it to disk (the crash-safe
/// write every real kill path funnels through), drops it, and lets the
/// supervisor resume from the checkpoint. Both the result JSON and the
/// store file must come out byte-identical to the uninterrupted run.
#[test]
fn seeded_kill_points_resume_byte_identical_with_zero_record_loss() {
    let dir = scratch_dir("soak");
    let golden_store = dir.join("golden.jsonl");
    let golden = golden_run(Some(&golden_store));
    let golden_json = as_json(&golden);
    let golden_records = fs::read_to_string(&golden_store).expect("golden store readable");

    let steps = total_steps();
    assert!(steps > 20, "campaign must have enough steps to kill mid-round (got {steps})");
    // Nine kill points spread across the whole campaign: different
    // rounds, different state-machine stages.
    let kill_points: BTreeSet<usize> = (1..=9).map(|i| i * steps / 10).filter(|&k| k > 0).collect();
    assert!(kill_points.len() >= 8, "need at least 8 distinct kill points");

    let mut phases_hit: BTreeSet<&'static str> = BTreeSet::new();
    let mut rounds_hit: BTreeSet<usize> = BTreeSet::new();
    for &k in &kill_points {
        let store_path = dir.join(format!("k{k}.jsonl"));
        let ckpt = dir.join(format!("k{k}.ckpt.json"));

        // The victim: run k steps, park, "die".
        let mut victim = fresh(Some(&store_path));
        victim.start();
        for _ in 0..k {
            assert_eq!(victim.step(), CampaignStatus::Running, "kill point {k} inside campaign");
        }
        phases_hit.insert(victim.phase().label());
        if victim.phase().round() != usize::MAX {
            rounds_hit.insert(victim.phase().round());
        }
        victim.park_to(&ckpt).expect("park persists");
        drop(victim);

        // The supervisor picks the campaign back up from the checkpoint.
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint: Some(ckpt.clone()),
            ..SupervisorConfig::default()
        });
        let run = sup.run(|loaded: Option<Checkpoint>| {
            let mut t = match loaded {
                Some(c) => Tuner::from_checkpoint_backend(c)?,
                None => Tuner::resume(&ckpt)?,
            };
            t.set_checkpoint_path(&ckpt);
            t.set_store(Store::open(&store_path)?, false);
            Ok(t)
        });
        assert_eq!(run.outcome, CampaignOutcome::Completed, "kill point {k}");
        assert_eq!(run.restarts, 0, "kill point {k}: healthy resume needs no restart");
        assert!(run.faults.is_empty(), "kill point {k}: {:?}", run.faults);
        let result = run.result.expect("completed run carries a result");
        assert_eq!(as_json(&result), golden_json, "kill point {k}: result must be byte-identical");
        let records = fs::read_to_string(&store_path).expect("resumed store readable");
        assert_eq!(records, golden_records, "kill point {k}: zero store-record loss");
    }
    assert!(
        phases_hit.len() >= 3,
        "kill points must cover several state-machine stages, got {phases_hit:?}"
    );
    assert!(
        rounds_hit.len() >= 2,
        "kill points must cover several rounds, got {rounds_hit:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

/// A measurement that hangs must be detected by the heartbeat watchdog
/// well before the hang resolves, restarted from the last cadence
/// checkpoint, and still finish byte-identical — with the whole episode
/// visible as typed `supervisor.*` records in the end-of-campaign report.
#[test]
fn watchdog_detects_stalled_measurement_and_recovers_byte_identical() {
    let dir = scratch_dir("stall");
    let ckpt = dir.join("stall.ckpt.json");
    let cfg = TunerConfig { checkpoint_every: 1, ..chaos_config() };
    let setup = || ModelSetup::Fresh(ModelKind::Pacm);

    // Golden through a *disarmed* stall backend (identical to the plain
    // simulator), probing the total number of measurement calls.
    let probe = StallControl::disarmed();
    let mut golden_tuner = Tuner::with_backend(
        GpuSpec::t4(),
        cfg,
        setup(),
        PsaConfig::default(),
        StallBackend::new(Simulator::new(GpuSpec::t4()), probe.clone()),
    );
    golden_tuner.add_task(workload(), 1);
    let golden = golden_tuner.run();
    let calls = probe.calls();
    assert!(calls > 4, "campaign must measure enough to stall mid-flight (got {calls})");

    // Armed run: one measurement two-thirds in hangs for two minutes —
    // far beyond the watchdog budget, far beyond what the test may take.
    let armed = StallControl::new(2 * calls / 3, Duration::from_secs(120));
    // The watchdog budget must sit above any *legitimate* step (debug
    // builds train slowly) and far below the injected hang.
    let mut sup = Supervisor::new(SupervisorConfig {
        watchdog_timeout_s: 5.0,
        poll_interval_s: 0.05,
        backoff_base_s: 0.01,
        checkpoint: Some(ckpt.clone()),
        seed: chaos_seed(),
        ..SupervisorConfig::default()
    });
    let trace = TraceHandle::new();
    sup.set_recorder(Box::new(trace.clone()));
    let started = Instant::now();
    let run = sup.run({
        let (armed, ckpt, trace) = (armed.clone(), ckpt.clone(), trace.clone());
        move |loaded: Option<Checkpoint>| {
            let mut t = match loaded {
                // Restoring through the checkpoint rebuilds the stall
                // backend *disarmed* — the hang was transient.
                Some(c) => Tuner::<StallBackend<Simulator>>::from_checkpoint_backend(c)?,
                None => {
                    let mut t = Tuner::with_backend(
                        GpuSpec::t4(),
                        cfg,
                        setup(),
                        PsaConfig::default(),
                        StallBackend::new(Simulator::new(GpuSpec::t4()), armed.clone()),
                    );
                    t.add_task(workload(), 1);
                    t
                }
            };
            t.set_checkpoint_path(&ckpt);
            t.set_recorder(Box::new(trace.clone()));
            Ok(t)
        }
    });
    let elapsed = started.elapsed();

    assert!(armed.fired(), "the stall must actually have fired");
    assert!(
        elapsed < Duration::from_secs(60),
        "watchdog must cut the 120 s hang short (took {elapsed:?})"
    );
    assert_eq!(run.outcome, CampaignOutcome::Completed);
    assert_eq!(run.restarts, 1, "one stall, one restart");
    assert!(
        matches!(run.faults.as_slice(), [CampaignFault::Stalled { .. }]),
        "fault must be typed Stalled: {:?}",
        run.faults
    );
    assert_eq!(
        as_json(&run.result.expect("completed")),
        as_json(&golden),
        "recovery from a stall must be byte-identical"
    );

    // The episode is visible in the trace and in the report.
    let jsonl = trace.to_jsonl();
    assert!(jsonl.contains("\"type\":\"supervisor.fault\""), "typed fault record");
    assert!(jsonl.contains("\"fault\":\"stalled\""), "fault labelled stalled");
    assert!(jsonl.contains("\"type\":\"supervisor.restart\""), "restart record");
    let report = trace.report();
    let activity = report.supervisor.clone().expect("supervised campaign reports activity");
    assert_eq!(activity.restarts, 1);
    assert_eq!(activity.outcome, "completed");
    assert_eq!(activity.faults.get("stalled"), Some(&1));
    assert!(!activity.quarantined);
    assert!(report.render().contains("--- supervisor ---"));
    fs::remove_dir_all(&dir).ok();
}

/// An injected checkpoint-write failure surfaces as a typed `Io` fault,
/// the supervisor restarts, and the campaign still finishes
/// byte-identical with a loadable final checkpoint.
#[test]
fn checkpoint_write_fault_restarts_and_recovers_byte_identical() {
    let dir = scratch_dir("ckpt-fault");
    let ckpt = dir.join("campaign.ckpt.json");
    let golden = golden_run(None);

    // Every checkpoint write fails on the first attempt; the restarted
    // attempt writes cleanly.
    let model = IoFaultModel { seed: chaos_seed(), write_fail_p: 1.0, torn_tail_p: 0.0, rename_fail_p: 0.0 };
    let mut sup = Supervisor::new(SupervisorConfig {
        backoff_base_s: 0.01,
        checkpoint: Some(ckpt.clone()),
        seed: chaos_seed(),
        ..SupervisorConfig::default()
    });
    let mut attempts = 0u32;
    let run = sup.run(|loaded: Option<Checkpoint>| {
        attempts += 1;
        let mut t = match loaded {
            Some(c) => Tuner::from_checkpoint_backend(c)?,
            None => fresh(None),
        };
        t.set_checkpoint_path(&ckpt);
        if attempts == 1 {
            t.set_checkpoint_io_faults(Some(IoFaults::new(model)));
        }
        Ok(t)
    });
    assert_eq!(attempts, 2);
    assert_eq!(run.outcome, CampaignOutcome::Completed);
    assert_eq!(run.restarts, 1);
    assert!(
        matches!(run.faults.as_slice(), [CampaignFault::Io { message }] if message.contains("checkpoint write failed")),
        "fault must be typed Io naming the checkpoint: {:?}",
        run.faults
    );
    assert_eq!(as_json(&run.result.expect("completed")), as_json(&golden));
    // The clean attempt's cadence checkpoints landed and stayed loadable.
    Checkpoint::load(&ckpt).expect("final checkpoint loads");
    fs::remove_dir_all(&dir).ok();
}

/// An injected *store* flush failure also restarts cleanly — and because
/// the store is flushed before the checkpoint is saved, the restart
/// re-measures (and re-records) the interval, losing zero records.
#[test]
fn store_write_fault_restarts_with_zero_record_loss() {
    let dir = scratch_dir("store-fault");
    let ckpt = dir.join("campaign.ckpt.json");
    let store_path = dir.join("records.jsonl");
    let golden_store = dir.join("golden.jsonl");
    let golden = golden_run(Some(&golden_store));

    let model = IoFaultModel { seed: chaos_seed(), write_fail_p: 1.0, torn_tail_p: 0.0, rename_fail_p: 0.0 };
    let mut sup = Supervisor::new(SupervisorConfig {
        backoff_base_s: 0.01,
        checkpoint: Some(ckpt.clone()),
        seed: chaos_seed(),
        ..SupervisorConfig::default()
    });
    let mut attempts = 0u32;
    let run = sup.run(|loaded: Option<Checkpoint>| {
        attempts += 1;
        let mut t = match loaded {
            Some(c) => Tuner::from_checkpoint_backend(c)?,
            None => fresh(None),
        };
        t.set_checkpoint_path(&ckpt);
        let mut store = Store::open(&store_path)?;
        if attempts == 1 {
            store.set_io_faults(Some(IoFaults::new(model)));
        }
        t.set_store(store, false);
        Ok(t)
    });
    assert_eq!(attempts, 2);
    assert_eq!(run.outcome, CampaignOutcome::Completed);
    assert_eq!(run.restarts, 1);
    assert!(
        matches!(run.faults.as_slice(), [CampaignFault::Io { message }] if message.contains("store write failed")),
        "fault must be typed Io naming the store: {:?}",
        run.faults
    );
    assert_eq!(as_json(&run.result.expect("completed")), as_json(&golden));
    assert_eq!(
        fs::read_to_string(&store_path).expect("store readable"),
        fs::read_to_string(&golden_store).expect("golden store readable"),
        "store-flush fault must not lose records"
    );
    fs::remove_dir_all(&dir).ok();
}

/// A simulated-time budget parks the campaign mid-flight with a live
/// snapshot; resuming the parked checkpoint finishes byte-identical to a
/// campaign that never stopped.
#[test]
fn sim_deadline_parks_and_parked_checkpoint_resumes_byte_identical() {
    let dir = scratch_dir("sim-deadline");
    let ckpt = dir.join("parked.ckpt.json");
    let golden = golden_run(None);
    let budget = golden.stats.total_s() / 2.0;
    assert!(budget > 0.0);

    let mut sup = Supervisor::new(SupervisorConfig {
        sim_deadline_s: Some(budget),
        checkpoint: Some(ckpt.clone()),
        seed: chaos_seed(),
        ..SupervisorConfig::default()
    });
    let run = sup.run(|loaded: Option<Checkpoint>| {
        let mut t = match loaded {
            Some(c) => Tuner::from_checkpoint_backend(c)?,
            None => fresh(None),
        };
        t.set_checkpoint_path(&ckpt);
        Ok(t)
    });
    assert_eq!(run.outcome, CampaignOutcome::SimDeadlineExceeded);
    assert_eq!(run.restarts, 0);
    let parked = run.result.expect("a parked campaign reports its snapshot");
    assert!(parked.stats.total_s() >= budget, "parked at or past the budget");
    assert!(parked.stats.total_s() < golden.stats.total_s(), "parked before the end");
    assert!(ckpt.exists(), "parking leaves a resumable checkpoint");

    let resumed = Tuner::resume(&ckpt).expect("parked checkpoint loads").run();
    assert_eq!(
        as_json(&resumed),
        as_json(&golden),
        "resuming the parked campaign must complete byte-identically"
    );
    fs::remove_dir_all(&dir).ok();
}
