//! Integration: crash-safe checkpointing and byte-identical resume.
//!
//! A campaign interrupted at round `k` (via `halt_after`, the test stand-in
//! for a crash) and resumed from its checkpoint must produce a result that
//! is byte-for-byte identical to the uninterrupted campaign — including the
//! tuning curve, the simulated-time ledger, every winning schedule, and all
//! fault/retry counters, at any thread count and with fault injection on.

use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::tuner::{TunerConfig, TuningResult};
use pruner::Pruner;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pruner-ckpt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(fault_rate: f64) -> TunerConfig {
    TunerConfig {
        rounds: 6,
        measure_per_round: 3,
        space_size: 32,
        target_pool: 96,
        fault_rate,
        checkpoint_every: 2,
        ..TunerConfig::default()
    }
}

fn builder(cfg: TunerConfig, threads: usize) -> pruner::PrunerBuilder {
    Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 256, 256, 256))
        .config(cfg)
        .model(ModelKind::Ansor)
        .seed(11)
        .threads(threads)
}

fn as_json(r: &TuningResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = scratch_dir("basic");
    let ckpt = dir.join("campaign.json");

    let full = builder(config(0.0), 1).build().tune();

    // "Crash" after round 4 (checkpoint cadence 2 → checkpoint at 4).
    let partial =
        builder(config(0.0), 1).checkpoint(&ckpt).halt_after(4).build().tune();
    assert!(partial.curve.points().len() < full.curve.points().len());
    assert!(ckpt.exists(), "halt must leave a checkpoint behind");

    let resumed = Pruner::resume(&ckpt).expect("checkpoint loads").tune();
    assert_eq!(as_json(&full), as_json(&resumed), "resume must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_resume_is_byte_identical_under_faults() {
    let dir = scratch_dir("faulty");
    let ckpt = dir.join("campaign.json");

    let full = builder(config(0.2), 1).build().tune();
    builder(config(0.2), 1).checkpoint(&ckpt).halt_after(2).build().tune();
    let resumed = Pruner::resume(&ckpt).expect("checkpoint loads").tune();
    assert_eq!(
        as_json(&full),
        as_json(&resumed),
        "fault counters, quarantine and retry accounting must survive resume"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_is_thread_count_invariant() {
    let dir = scratch_dir("threads");
    let ckpt = dir.join("campaign.json");

    let full_serial = builder(config(0.1), 1).build().tune();
    // Checkpoint written by a 4-thread run, resumed by a 1-thread run —
    // the checkpoint carries no trace of the pipeline width.
    builder(config(0.1), 4).checkpoint(&ckpt).halt_after(4).build().tune();
    let mut resumed_tuner = pruner::tuner::Tuner::resume(&ckpt).expect("checkpoint loads");
    let resumed = resumed_tuner.run();
    assert_eq!(as_json(&full_serial), as_json(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_file_is_replaced_atomically() {
    let dir = scratch_dir("atomic");
    let ckpt = dir.join("campaign.json");
    builder(config(0.0), 1).checkpoint(&ckpt).build().tune();
    assert!(ckpt.exists());
    let tmp = dir.join("campaign.json.tmp");
    assert!(!tmp.exists(), "temporary file must be renamed over the destination");
    // The final checkpoint on disk must itself be loadable and resumable
    // (it records the completed campaign's last checkpointed round).
    let _ = Pruner::resume(&ckpt).expect("final checkpoint loads").tune();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_missing_or_corrupt_file_fails_cleanly() {
    let dir = scratch_dir("corrupt");
    assert!(Pruner::resume(dir.join("nope.json")).is_err());
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{ not json").unwrap();
    let err = match Pruner::resume(&bad) {
        Err(e) => e,
        Ok(_) => panic!("corrupt checkpoint must not load"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).ok();
}
