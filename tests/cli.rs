//! End-to-end tests of the `pruner-tune` command-line interface.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pruner-tune")
}

#[test]
fn tunes_a_matmul_and_writes_json() {
    let out_path = std::env::temp_dir().join("pruner-cli-test-run.json");
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,256,256,256",
            "--trials",
            "40",
            "--seed",
            "1",
            "--show-schedules",
            "1",
            "--output",
        ])
        .arg(&out_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("best latency"), "{stdout}");
    assert!(stdout.contains("blockIdx.x"), "schedule rendering missing: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("result file written");
    assert!(json.contains("best_latency_s"));
    std::fs::remove_file(out_path).ok();
}

#[test]
fn rejects_unknown_platform() {
    let output = Command::new(bin())
        .args(["--platform", "h100", "--matmul", "1,8,8,8"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown platform"));
}

#[test]
fn requires_a_task() {
    let output =
        Command::new(bin()).args(["--platform", "t4"]).output().expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--network or at least one"));
}

#[test]
fn help_exits_zero() {
    let output = Command::new(bin()).arg("--help").output().expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}

#[test]
fn rejects_out_of_range_fault_rate() {
    let output = Command::new(bin())
        .args(["--platform", "t4", "--matmul", "1,8,8,8", "--fault-rate", "1.5"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--fault-rate"));
}

#[test]
fn kill_and_resume_via_cli_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let full_path = dir.join("full.json");
    let resumed_path = dir.join("resumed.json");
    let ckpt_path = dir.join("ckpt.json");
    let common = [
        "--platform",
        "t4",
        "--matmul",
        "1,256,256,256",
        "--trials",
        "80",
        "--seed",
        "5",
        "--fault-rate",
        "0.1",
    ];

    let full = Command::new(bin())
        .args(common)
        .arg("--output")
        .arg(&full_path)
        .output()
        .expect("binary runs");
    assert!(full.status.success(), "stderr: {}", String::from_utf8_lossy(&full.stderr));

    // "Crash" after 4 of 8 rounds, leaving a checkpoint behind.
    let partial = Command::new(bin())
        .args(common)
        .args(["--checkpoint-every", "2", "--halt-after", "4", "--checkpoint"])
        .arg(&ckpt_path)
        .output()
        .expect("binary runs");
    assert!(partial.status.success(), "stderr: {}", String::from_utf8_lossy(&partial.stderr));
    assert!(ckpt_path.exists(), "checkpoint file must exist after the halt");

    let resumed = Command::new(bin())
        .arg("--resume")
        .arg(&ckpt_path)
        .arg("--output")
        .arg(&resumed_path)
        .output()
        .expect("binary runs");
    assert!(resumed.status.success(), "stderr: {}", String::from_utf8_lossy(&resumed.stderr));

    let full_json = std::fs::read_to_string(&full_path).expect("full result written");
    let resumed_json = std::fs::read_to_string(&resumed_path).expect("resumed result written");
    assert_eq!(full_json, resumed_json, "resumed run must match the uninterrupted run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_jsonl_and_report_prints_funnel() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out_path = dir.join("result.json");
    let trace_path = dir.join("trace.jsonl");
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,256,256,256",
            "--trials",
            "40",
            "--seed",
            "1",
            "--report",
            "--trace-out",
        ])
        .arg(&trace_path)
        .arg("--output")
        .arg(&out_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let lines: Vec<&str> = trace.lines().collect();
    assert!(!lines.is_empty(), "trace must contain events");
    for line in &lines {
        assert!(line.starts_with("{\"v\":"), "unversioned record: {line}");
        assert!(line.ends_with('}'), "truncated record: {line}");
    }
    assert!(trace.contains("\"type\":\"campaign_begin\""));
    assert!(trace.contains("\"type\":\"round\""));
    assert!(trace.contains("\"type\":\"campaign_end\""));

    // 40 trials at the default 10 measurements/round = 4 rounds.
    assert_eq!(lines.iter().filter(|l| l.contains("\"type\":\"round\"")).count(), 4);

    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("campaign report"), "report missing: {stderr}");
    assert!(stderr.contains("draft -> verify funnel"), "funnel missing: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("trace written to"), "trace confirmation missing: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_to_unwritable_path_fails() {
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,64,64,64",
            "--trials",
            "10",
            "--trace-out",
            "/nonexistent/dir/trace.jsonl",
        ])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("error writing trace"));
}

#[test]
fn resume_with_missing_checkpoint_fails() {
    let output = Command::new(bin())
        .args(["--resume", "/nonexistent/pruner-ckpt.json"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("error resuming"));
}
