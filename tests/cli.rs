//! End-to-end tests of the `pruner-tune` command-line interface.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pruner-tune")
}

#[test]
fn tunes_a_matmul_and_writes_json() {
    let out_path = std::env::temp_dir().join("pruner-cli-test-run.json");
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,256,256,256",
            "--trials",
            "40",
            "--seed",
            "1",
            "--show-schedules",
            "1",
            "--output",
        ])
        .arg(&out_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("best latency"), "{stdout}");
    assert!(stdout.contains("blockIdx.x"), "schedule rendering missing: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("result file written");
    assert!(json.contains("best_latency_s"));
    std::fs::remove_file(out_path).ok();
}

#[test]
fn rejects_unknown_platform() {
    let output = Command::new(bin())
        .args(["--platform", "h100", "--matmul", "1,8,8,8"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown platform"));
}

#[test]
fn requires_a_task() {
    let output =
        Command::new(bin()).args(["--platform", "t4"]).output().expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--network or at least one"));
}

#[test]
fn help_exits_zero() {
    let output = Command::new(bin()).arg("--help").output().expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}
