//! End-to-end tests of the `pruner-tune` command-line interface.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pruner-tune")
}

#[test]
fn tunes_a_matmul_and_writes_json() {
    let out_path = std::env::temp_dir().join("pruner-cli-test-run.json");
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,256,256,256",
            "--trials",
            "40",
            "--seed",
            "1",
            "--show-schedules",
            "1",
            "--output",
        ])
        .arg(&out_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("best latency"), "{stdout}");
    assert!(stdout.contains("blockIdx.x"), "schedule rendering missing: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("result file written");
    assert!(json.contains("best_latency_s"));
    std::fs::remove_file(out_path).ok();
}

#[test]
fn rejects_unknown_platform() {
    let output = Command::new(bin())
        .args(["--platform", "h100", "--matmul", "1,8,8,8"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown platform"));
}

#[test]
fn requires_a_task() {
    let output =
        Command::new(bin()).args(["--platform", "t4"]).output().expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--network or at least one"));
}

#[test]
fn help_exits_zero() {
    let output = Command::new(bin()).arg("--help").output().expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}

#[test]
fn rejects_out_of_range_fault_rate() {
    let output = Command::new(bin())
        .args(["--platform", "t4", "--matmul", "1,8,8,8", "--fault-rate", "1.5"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--fault-rate"));
}

#[test]
fn kill_and_resume_via_cli_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let full_path = dir.join("full.json");
    let resumed_path = dir.join("resumed.json");
    let ckpt_path = dir.join("ckpt.json");
    let common = [
        "--platform",
        "t4",
        "--matmul",
        "1,256,256,256",
        "--trials",
        "80",
        "--seed",
        "5",
        "--fault-rate",
        "0.1",
    ];

    let full = Command::new(bin())
        .args(common)
        .arg("--output")
        .arg(&full_path)
        .output()
        .expect("binary runs");
    assert!(full.status.success(), "stderr: {}", String::from_utf8_lossy(&full.stderr));

    // "Crash" after 4 of 8 rounds, leaving a checkpoint behind.
    let partial = Command::new(bin())
        .args(common)
        .args(["--checkpoint-every", "2", "--halt-after", "4", "--checkpoint"])
        .arg(&ckpt_path)
        .output()
        .expect("binary runs");
    assert!(partial.status.success(), "stderr: {}", String::from_utf8_lossy(&partial.stderr));
    assert!(ckpt_path.exists(), "checkpoint file must exist after the halt");

    let resumed = Command::new(bin())
        .arg("--resume")
        .arg(&ckpt_path)
        .arg("--output")
        .arg(&resumed_path)
        .output()
        .expect("binary runs");
    assert!(resumed.status.success(), "stderr: {}", String::from_utf8_lossy(&resumed.stderr));

    let full_json = std::fs::read_to_string(&full_path).expect("full result written");
    let resumed_json = std::fs::read_to_string(&resumed_path).expect("resumed result written");
    assert_eq!(full_json, resumed_json, "resumed run must match the uninterrupted run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_jsonl_and_report_prints_funnel() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out_path = dir.join("result.json");
    let trace_path = dir.join("trace.jsonl");
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,256,256,256",
            "--trials",
            "40",
            "--seed",
            "1",
            "--report",
            "--trace-out",
        ])
        .arg(&trace_path)
        .arg("--output")
        .arg(&out_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let lines: Vec<&str> = trace.lines().collect();
    assert!(!lines.is_empty(), "trace must contain events");
    for line in &lines {
        assert!(line.starts_with("{\"v\":"), "unversioned record: {line}");
        assert!(line.ends_with('}'), "truncated record: {line}");
    }
    assert!(trace.contains("\"type\":\"campaign_begin\""));
    assert!(trace.contains("\"type\":\"round\""));
    assert!(trace.contains("\"type\":\"campaign_end\""));

    // 40 trials at the default 10 measurements/round = 4 rounds.
    assert_eq!(lines.iter().filter(|l| l.contains("\"type\":\"round\"")).count(), 4);

    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("campaign report"), "report missing: {stderr}");
    assert!(stderr.contains("draft -> verify funnel"), "funnel missing: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("trace written to"), "trace confirmation missing: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_warm_start_cli_roundtrip_measures_less() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store_path = dir.join("records.jsonl");
    let common = [
        "--platform",
        "t4",
        "--matmul",
        "1,128,128,128",
        "--matmul",
        "1,256,256,256",
        "--trials",
        "32",
        "--seed",
        "7",
    ];
    let run = |extra: &[&str], out: &std::path::Path| {
        let output = Command::new(bin())
            .args(common)
            .args(extra)
            .arg("--output")
            .arg(out)
            .output()
            .expect("binary runs");
        assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
        String::from_utf8_lossy(&output.stdout).to_string()
    };
    #[derive(serde::Deserialize)]
    struct Stats {
        trials: u64,
    }
    #[derive(serde::Deserialize)]
    struct ResultFile {
        stats: Stats,
    }
    let trials = |path: &std::path::Path| -> u64 {
        let parsed: ResultFile =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        parsed.stats.trials
    };

    let baseline_path = dir.join("baseline.json");
    let cold_path = dir.join("cold.json");
    let warm_path = dir.join("warm.json");
    run(&[], &baseline_path);

    // First store-backed run: the store is empty, so warm start replays
    // nothing and the campaign must stay byte-identical to storeless.
    let store = store_path.to_str().unwrap();
    let cold_stdout = run(&["--store", store], &cold_path);
    assert_eq!(
        std::fs::read_to_string(&baseline_path).unwrap(),
        std::fs::read_to_string(&cold_path).unwrap(),
        "empty-store campaign must match the storeless campaign"
    );
    assert!(cold_stdout.contains("records in"), "store summary missing: {cold_stdout}");
    assert!(store_path.exists(), "store file must be flushed");

    // Second run warm-starts from the first run's verdicts and must hit
    // the simulator strictly less often.
    run(&["--store", store], &warm_path);
    assert!(
        trials(&warm_path) < trials(&cold_path),
        "warm start must measure strictly less: {} vs {}",
        trials(&warm_path),
        trials(&cold_path)
    );

    // --warm-start off records without replaying: identical campaign again.
    let off_path = dir.join("off.json");
    run(&["--store", store, "--warm-start", "off"], &off_path);
    assert_eq!(
        std::fs::read_to_string(&baseline_path).unwrap(),
        std::fs::read_to_string(&off_path).unwrap(),
        "record-only campaign must match the storeless campaign"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn records_subcommand_reports_damage_compacts_and_exports() {
    use pruner::gpu::GpuSpec;
    use pruner::ir::Workload;
    use pruner::sketch::Program;
    use pruner::store::{RecordOutcome, TuningRecord, SCHEMA_VERSION};

    let dir = std::env::temp_dir().join(format!("pruner-cli-records-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store_path = dir.join("records.jsonl");

    // Hand-damage a log with every corruption class the format doc names:
    // a duplicate, an unknown schema version, a mismatched fingerprint and
    // a final line truncated mid-append.
    let spec = GpuSpec::t4();
    let good = |wl: &Workload, latency_s: f64| {
        serde_json::to_string(&TuningRecord::new(
            &spec,
            Program::fallback(wl),
            RecordOutcome::Success { latency_s, variance: 0.0 },
        ))
        .unwrap()
    };
    let mm = good(&Workload::matmul(1, 64, 64, 64), 1.0e-3);
    let red = good(&Workload::reduction(1024, 256), 2.0e-3);
    let future = format!("{{\"v\":{},\"payload\":\"opaque\"}}", SCHEMA_VERSION + 1);
    let mut lying = TuningRecord::new(
        &spec,
        Program::fallback(&Workload::matmul(1, 32, 32, 32)),
        RecordOutcome::Failure { kind: pruner::gpu::FaultKind::Timeout, attempts: 3 },
    );
    lying.workload_fp = "matmul_b9m9n9k9".into();
    let lying = serde_json::to_string(&lying).unwrap();
    let torn = &mm[..mm.len() / 2];
    std::fs::write(
        &store_path,
        format!("{mm}\n{red}\n{mm}\n{future}\n{lying}\n{torn}"),
    )
    .expect("write damaged store");

    let records = |args: &[&str]| {
        Command::new(bin()).arg("records").args(args).output().expect("binary runs")
    };
    let store = store_path.to_str().unwrap();

    // stats: loads the two good records, counts every skip class.
    let stats = records(&["stats", "--store", store]);
    assert!(stats.status.success(), "stderr: {}", String::from_utf8_lossy(&stats.stderr));
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("2 loaded from 6 lines"), "{stdout}");
    assert!(stdout.contains("1 duplicate, 1 corrupt, 1 unknown-version, 1 fingerprint-mismatched"), "{stdout}");
    assert!(stdout.contains("matmul_b1m64n64k64"), "{stdout}");

    // compact: rewrites the log to just the good records.
    let compact = records(&["compact", "--store", store]);
    assert!(compact.status.success());
    assert!(String::from_utf8_lossy(&compact.stdout).contains("kept 2 records, dropped 4 lines"));
    let text = std::fs::read_to_string(&store_path).unwrap();
    assert_eq!(text.lines().count(), 2, "compacted log keeps only valid records");

    // export: successful records become an offline dataset.
    let ds_path = dir.join("dataset.json");
    let export =
        records(&["export", "--store", store, "--output", ds_path.to_str().unwrap()]);
    assert!(export.status.success(), "stderr: {}", String::from_utf8_lossy(&export.stderr));
    let ds = pruner::dataset::Dataset::load_json(&ds_path).expect("exported dataset loads");
    assert_eq!(ds.platform, "NVIDIA T4");
    assert_eq!(ds.num_programs(), 2);

    // Unknown mode and missing --store are flag errors, not panics.
    assert!(!records(&["prune", "--store", store]).status.success());
    assert!(!records(&["stats"]).status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_to_unwritable_path_fails() {
    let output = Command::new(bin())
        .args([
            "--platform",
            "t4",
            "--matmul",
            "1,64,64,64",
            "--trials",
            "10",
            "--trace-out",
            "/nonexistent/dir/trace.jsonl",
        ])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("error writing trace"));
}

#[test]
fn resume_with_missing_checkpoint_fails() {
    let output = Command::new(bin())
        .args(["--resume", "/nonexistent/pruner-ckpt.json"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("error resuming"));
}

#[test]
fn supervision_flags_reject_resume() {
    let output = Command::new(bin())
        .args(["--resume", "ckpt.json", "--deadline", "5"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("supervision flags do not combine with --resume"), "{stderr}");
}

#[test]
fn supervision_flags_must_be_positive() {
    for flag in ["--deadline", "--watchdog-secs"] {
        let output = Command::new(bin())
            .args(["--platform", "t4", "--matmul", "1,8,8,8", flag, "0"])
            .output()
            .expect("binary runs");
        assert!(!output.status.success(), "{flag} 0 must be rejected");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("must be positive"),
            "{flag}"
        );
    }
}

#[test]
fn supervised_campaign_matches_unsupervised_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("pruner-cli-supervised-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let plain_path = dir.join("plain.json");
    let supervised_path = dir.join("supervised.json");
    let common =
        ["--platform", "t4", "--matmul", "1,128,128,128", "--trials", "24", "--seed", "3"];

    let plain = Command::new(bin())
        .args(common)
        .arg("--output")
        .arg(&plain_path)
        .output()
        .expect("binary runs");
    assert!(plain.status.success(), "stderr: {}", String::from_utf8_lossy(&plain.stderr));

    // Any supervision flag routes the campaign through the supervisor.
    let supervised = Command::new(bin())
        .args(common)
        .args(["--max-restarts", "2", "--output"])
        .arg(&supervised_path)
        .output()
        .expect("binary runs");
    assert!(
        supervised.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&supervised.stderr)
    );

    assert_eq!(
        std::fs::read_to_string(&plain_path).expect("plain result"),
        std::fs::read_to_string(&supervised_path).expect("supervised result"),
        "a healthy supervised campaign must be byte-identical to an unsupervised one"
    );
    std::fs::remove_dir_all(&dir).ok();
}
