//! Helpers shared by the repo-root integration suites. Each `[[test]]`
//! target compiles this module independently, so not every suite uses
//! every helper.
#![allow(dead_code)]

use pruner::gpu::Backend;
use pruner::ir::Workload;
use pruner::sketch::Program;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Best latency over `samples` sampled programs (plus the fallback) for
/// one workload on any measurement backend — the cheap stand-in for a
/// tuned latency that the physical-sanity and differential suites use.
pub fn best_of<B: Backend>(backend: &B, wl: &Workload, samples: usize, seed: u64) -> f64 {
    let limits = backend.spec().limits();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..samples)
        .map(|_| backend.latency(&Program::sample(wl, &limits, &mut rng)))
        .fold(backend.latency(&Program::fallback(wl)), f64::min)
}
