//! Integration: every layer of the stack is reproducible given a seed.

use pruner::cost::ModelKind;
use pruner::dataset::Dataset;
use pruner::gpu::{GpuSpec, Simulator};
use pruner::ir::{zoo, Workload};
use pruner::tuner::TunerConfig;
use pruner::Pruner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn sampling_and_simulation_reproduce() {
    let spec = GpuSpec::titan_v();
    let sim = Simulator::new(spec.clone());
    let limits = spec.limits();
    let wl = Workload::conv2d(1, 64, 56, 56, 64, 3, 1, 1);
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        (0..20)
            .map(|i| {
                let p = pruner::sketch::Program::sample(&wl, &limits, &mut rng);
                (sim.latency(&p), sim.measure(&p, i))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn dataset_generation_reproduces_across_calls() {
    let a = Dataset::generate(&GpuSpec::k80(), &[zoo::bert_tiny(1, 64)], 10, 5);
    let b = Dataset::generate(&GpuSpec::k80(), &[zoo::bert_tiny(1, 64)], 10, 5);
    assert_eq!(a.num_programs(), b.num_programs());
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        assert_eq!(ea.latencies, eb.latencies);
        assert_eq!(ea.programs, eb.programs);
    }
}

#[test]
fn model_training_reproduces() {
    let ds = Dataset::generate(&GpuSpec::t4(), &[zoo::bert_tiny(1, 64)], 10, 5);
    let samples = ds.to_samples();
    let train = |seed: u64| {
        let mut m = ModelKind::Pacm.build(seed);
        m.fit(&samples, 4);
        m.predict(&samples)
    };
    assert_eq!(train(9), train(9));
    assert_ne!(train(9), train(10), "different seeds must differ");
}

#[test]
fn full_campaign_reproduces() {
    let run = || {
        Pruner::builder(GpuSpec::a100())
            .workload(Workload::matmul(1, 512, 512, 512))
            .config(TunerConfig::quick())
            .seed(11)
            .build()
            .tune()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_latency_s, b.best_latency_s);
    assert_eq!(a.curve, b.curve);
    assert_eq!(a.stats, b.stats);
}
