//! Integration: injected hardware failures never break the campaign.
//!
//! The fault-tolerant measurement subsystem guarantees that at any fault
//! rate the campaign terminates, the best-so-far curve stays monotone,
//! failed measurements never reach the incumbent or the training window,
//! and — because every fault draw is a pure function of (fault seed,
//! program, attempt nonce) — the whole campaign remains bit-identical at
//! any thread count. At rate 0 the campaign is byte-identical to a
//! fault-unaware build (pinned separately by the golden suite).

use proptest::prelude::*;
use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::tuner::{TunerConfig, TuningResult};
use pruner::Pruner;

fn campaign(fault_rate: f64, seed: u64, threads: usize) -> TuningResult {
    Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 256, 256, 256))
        .config(TunerConfig {
            rounds: 3,
            measure_per_round: 3,
            space_size: 32,
            target_pool: 96,
            fault_rate,
            ..TunerConfig::default()
        })
        .model(ModelKind::Ansor)
        .seed(seed)
        .threads(threads)
        .build()
        .tune()
}

fn assert_well_formed(r: &TuningResult) {
    let lats: Vec<f64> = r.curve.points().iter().map(|p| p.best_latency_s).collect();
    assert!(!lats.is_empty(), "campaign must record a curve");
    assert!(lats.iter().all(|l| l.is_finite()), "warm-up keeps the incumbent finite");
    assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12), "curve must stay monotone");
    assert_eq!(
        r.stats.failures,
        r.stats.compile_errors + r.stats.timeouts + r.stats.device_resets + r.stats.outliers,
        "fault-class counters must partition the failures"
    );
    assert_eq!(
        r.stats.failures,
        r.stats.retries + r.stats.quarantined,
        "every failure is either retried or ends in quarantine"
    );
}

proptest! {
    // Each case runs 2 full campaigns per rate; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn faulty_campaigns_terminate_monotone_and_thread_invariant(
        seed in 0u64..1000,
    ) {
        for rate in [0.0, 0.05, 0.25] {
            let serial = campaign(rate, seed, 1);
            assert_well_formed(&serial);
            if rate > 0.0 {
                // Injection must actually bite at the configured rates
                // over a ~30-measurement campaign... statistically; at
                // 0.05 a lucky seed can stay clean, so only demand it at
                // the heavy rate.
                if rate >= 0.25 {
                    prop_assert!(serial.stats.failures > 0, "rate {rate} never fired");
                }
            } else {
                prop_assert_eq!(serial.stats.failures, 0);
                prop_assert_eq!(serial.stats.fault_time_s, 0.0);
            }
            let parallel = campaign(rate, seed, 4);
            prop_assert_eq!(&serial.curve, &parallel.curve, "curve diverged at rate {}", rate);
            prop_assert_eq!(&serial.stats, &parallel.stats, "ledger diverged at rate {}", rate);
            prop_assert_eq!(
                &serial.best_programs, &parallel.best_programs,
                "winning schedules diverged at rate {}", rate
            );
        }
    }
}

#[test]
fn heavy_fault_rate_still_improves_over_fallback() {
    let r = campaign(0.25, 42, 1);
    assert_well_formed(&r);
    let first = r.curve.points().first().unwrap().best_latency_s;
    assert!(
        r.best_latency_s <= first,
        "a faulty campaign may stall but must never regress: {first} -> {}",
        r.best_latency_s
    );
    assert!(r.stats.fault_time_s > 0.0, "failures must cost simulated time");
    assert!(
        r.stats.total_s() > r.stats.measure_time_s,
        "the ledger must include the lost time"
    );
}

#[test]
fn zero_rate_ledger_matches_fault_unaware_campaign() {
    // fault_rate 0 must not merely produce similar results — the entire
    // ledger and trajectory must be identical to a build that never heard
    // of fault injection (no extra RNG draws, no nonce drift).
    let zero = campaign(0.0, 7, 1);
    let plain = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 256, 256, 256))
        .config(TunerConfig {
            rounds: 3,
            measure_per_round: 3,
            space_size: 32,
            target_pool: 96,
            ..TunerConfig::default()
        })
        .model(ModelKind::Ansor)
        .seed(7)
        .threads(1)
        .build()
        .tune();
    assert_eq!(
        serde_json::to_string(&zero).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "zero-fault path must be byte-identical"
    );
}

#[test]
fn quarantine_happens_under_sustained_faults() {
    // With no retries, any failure quarantines immediately: over a long
    // enough campaign at rate 0.25 at least one candidate must land in
    // quarantine, and the run still completes.
    let r = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 256, 256, 256))
        .config(TunerConfig {
            rounds: 6,
            measure_per_round: 4,
            space_size: 32,
            target_pool: 96,
            fault_rate: 0.25,
            ..TunerConfig::default()
        })
        .model(ModelKind::Ansor)
        .seed(3)
        .max_retries(0)
        .threads(1)
        .build()
        .tune();
    assert_well_formed(&r);
    assert!(r.stats.quarantined > 0, "rate 0.25 with no retries must quarantine");
    assert_eq!(r.stats.retries, 0);
}
