//! End-to-end tests for the cross-hardware continual-learning fleet.
//!
//! The contract under test (see `docs/FLEET.md`):
//!
//! 1. a fleet run is **byte-identical at any thread count** — the
//!    serialized `FleetResult` of a 1-thread run equals a 4-thread run;
//! 2. a fleet **killed mid-roster and resumed** from its manifest
//!    converges to those same bytes;
//! 3. a **2-device fleet degenerates** to the plain pairwise MTL chain
//!    the tuner already implements, byte for byte, across seeds and
//!    momenta (property test);
//! 4. the shared store **never leaks measurements across device
//!    fingerprints** — device A's records must not preseed device B's
//!    measurement cache;
//! 5. every JSON example in `docs/FLEET.md` parses against the real
//!    types (the doc cannot drift from the code).

use proptest::prelude::*;
use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::store::Store;
use pruner::trace::Value;
use pruner::tuner::fleet::{pretrain_samples, FleetConfig};
use pruner::tuner::{pretrain_pacm, ModelSetup, Tuner, TunerConfig};
use pruner::{Fleet, FleetResult, FleetStatus};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pruner-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Small-but-real fleet config: multiple rounds per stage (so MTL rounds
/// actually fold), two workloads, deterministic seeds.
fn fleet_config(tag: &str, roster: Vec<GpuSpec>, threads: usize) -> FleetConfig {
    let mut cfg = FleetConfig::quick(roster, scratch_dir(tag));
    cfg.workloads = vec![
        (Workload::matmul(1, 128, 128, 128), 2),
        (Workload::conv2d(1, 8, 14, 14, 16, 3, 1, 1), 1),
    ];
    cfg.tuner = TunerConfig {
        rounds: 3,
        measure_per_round: 3,
        space_size: 24,
        target_pool: 48,
        train_epochs: 1,
        mtl_epochs: 1,
        threads,
        ..TunerConfig::quick()
    };
    cfg.pretrain_per_workload = 10;
    cfg.pretrain_epochs = 2;
    cfg.probes_per_workload = 8;
    cfg
}

fn run_to_json(cfg: FleetConfig) -> String {
    let result =
        Fleet::new(cfg).run().expect("fleet run").result.expect("roster completed");
    serde_json::to_string(&result).expect("serialize FleetResult")
}

#[test]
fn fleet_is_byte_identical_across_thread_counts() {
    let roster = vec![GpuSpec::k80(), GpuSpec::t4(), GpuSpec::a100()];
    let one = run_to_json(fleet_config("threads1", roster.clone(), 1));
    let four = run_to_json(fleet_config("threads4", roster, 4));
    assert_eq!(one, four, "fleet must be byte-identical at any thread count");
}

#[test]
fn fleet_kill_and_resume_mid_roster_is_byte_identical() {
    let roster = vec![GpuSpec::k80(), GpuSpec::t4(), GpuSpec::a100()];
    let uninterrupted = run_to_json(fleet_config("kr-full", roster.clone(), 2));

    // Kill after each possible stage boundary and resume to completion.
    for halt_at in 1..roster.len() {
        let mut cfg = fleet_config(&format!("kr-halt{halt_at}"), roster.clone(), 2);
        cfg.halt_after_stages = Some(halt_at);
        let parked = Fleet::new(cfg.clone()).run().expect("halted fleet run");
        assert_eq!(parked.status, FleetStatus::Parked);
        assert_eq!(parked.stages_done, halt_at);
        assert!(parked.result.is_none(), "a parked fleet has no final result");
        cfg.halt_after_stages = None;
        let resumed = run_to_json(cfg);
        assert_eq!(
            uninterrupted, resumed,
            "resume after stage {halt_at} must reproduce the uninterrupted bytes"
        );
    }
}

#[test]
fn fleet_with_shared_store_resumes_byte_identically() {
    // Same as above but with the shared record store attached — replay
    // plus fingerprint filtering must not break resume determinism.
    let mut full = fleet_config("store-full", vec![GpuSpec::k80(), GpuSpec::t4()], 2);
    full.store = Some(full.state_dir.join("records.jsonl"));
    let uninterrupted = run_to_json(full);

    let mut cfg = fleet_config("store-halt", vec![GpuSpec::k80(), GpuSpec::t4()], 2);
    cfg.store = Some(cfg.state_dir.join("records.jsonl"));
    cfg.halt_after_stages = Some(1);
    let parked = Fleet::new(cfg.clone()).run().expect("halted fleet run");
    assert_eq!(parked.status, FleetStatus::Parked);
    cfg.halt_after_stages = None;
    assert_eq!(
        uninterrupted,
        run_to_json(cfg),
        "store-backed resume must reproduce the uninterrupted bytes"
    );
}

/// Device A's store records must never preseed device B's measurement
/// cache: the fingerprints differ, so replay must filter every record.
#[test]
fn store_records_never_cross_device_fingerprints() {
    let dir = scratch_dir("isolation");
    let store_path = dir.join("records.jsonl");
    let config = TunerConfig {
        rounds: 2,
        measure_per_round: 3,
        space_size: 16,
        target_pool: 32,
        train_epochs: 1,
        threads: 1,
        ..TunerConfig::quick()
    };
    let wl = Workload::matmul(1, 128, 128, 128);

    // Campaign on device A fills the store.
    let mut a = Tuner::new(
        GpuSpec::k80(),
        config,
        ModelSetup::Fresh(pruner::cost::ModelKind::Pacm),
    );
    a.add_task(wl.clone(), 1);
    a.set_store(Store::open(&store_path).unwrap(), true);
    a.run();
    let recorded = Store::open(&store_path).unwrap().len();
    assert!(recorded > 0, "device A must have recorded measurements");

    // The store-level view: replaying for device B matches nothing.
    let store = Store::open(&store_path).unwrap();
    let workload_fps: std::collections::HashSet<String> =
        std::iter::once(wl.key()).collect();
    let replay = store.replay(&GpuSpec::t4().fingerprint(), &workload_fps);
    assert!(replay.records.is_empty(), "no record may match a foreign fingerprint");
    assert_eq!(replay.spec_mismatches, recorded, "every record must be spec-filtered");

    // The campaign-level view: device B's warm start preseeds nothing,
    // device A's preseeds everything it recorded.
    let preseeded = |spec: GpuSpec| -> (u64, u64) {
        let trace = pruner::trace::TraceHandle::new();
        let mut t = Tuner::new(spec, config, ModelSetup::Fresh(pruner::cost::ModelKind::Pacm));
        t.add_task(wl.clone(), 1);
        t.set_store(Store::open(&store_path).unwrap(), true);
        t.set_recorder(Box::new(trace.clone()));
        t.run();
        let records = trace.records();
        let replay = records
            .iter()
            .find(|r| r.kind() == "store_replay")
            .expect("warm start emits store_replay");
        let get = |key: &str| replay.get(key).and_then(Value::as_u64).unwrap_or(0);
        (get("preseeded"), get("spec_mismatches"))
    };
    let (a_preseeded, a_mismatches) = preseeded(GpuSpec::k80());
    assert!(a_preseeded > 0, "device A must warm-start from its own records");
    assert_eq!(a_mismatches, 0, "device A's own records all match");
    // Everything in the store is still a device-A record here (the
    // control rerun appended more of them); B must filter every one.
    let a_total = Store::open(&store_path).unwrap().len() as u64;
    let (b_preseeded, b_mismatches) = preseeded(GpuSpec::t4());
    assert_eq!(b_preseeded, 0, "device B must not inherit device A's cache");
    assert_eq!(b_mismatches, a_total, "device B must filter every A record");
}

/// Every fenced JSON example in `docs/FLEET.md` must parse against the
/// real types, in order: the roster (`Vec<GpuSpec>`), the device summary
/// (`Vec<FleetDeviceSummary>`), and the transfer report
/// (`FleetTransferReport`). Editing the doc or the types out of sync
/// fails this test.
#[test]
fn fleet_doc_examples_parse_and_roundtrip() {
    let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/FLEET.md"));
    let fences: Vec<&str> = doc
        .split("```json\n")
        .skip(1)
        .map(|chunk| chunk.split("```").next().expect("closed fence"))
        .collect();
    assert_eq!(fences.len(), 3, "FLEET.md must keep its three worked JSON examples");

    let roster: Vec<GpuSpec> = serde_json::from_str(fences[0])
        .expect("example 1 must parse as Vec<GpuSpec>");
    assert!(!roster.is_empty());
    let devices: Vec<pruner::tuner::FleetDeviceSummary> = serde_json::from_str(fences[1])
        .expect("example 2 must parse as Vec<FleetDeviceSummary>");
    assert!(!devices.is_empty());
    let report: pruner::tuner::FleetTransferReport = serde_json::from_str(fences[2])
        .expect("example 3 must parse as FleetTransferReport");
    assert_eq!(report.probe_scores.len(), devices.len());

    // Round-trip: re-serializing the parsed values must preserve every
    // field (serde equality through a second parse).
    let devices2: Vec<pruner::tuner::FleetDeviceSummary> =
        serde_json::from_str(&serde_json::to_string(&devices).unwrap()).unwrap();
    assert_eq!(devices, devices2);
    let report2: pruner::tuner::FleetTransferReport =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(report, report2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: a 2-device fleet is a strict generalization of the
    /// pairwise MTL chain — for any seed and momentum, the per-stage
    /// results are byte-identical to pre-train → MTL-tune A → carry
    /// Siamese → MTL-tune B done by hand.
    #[test]
    fn two_device_fleet_degenerates_to_pairwise_mtl(
        seed in 0u64..1000,
        momentum_idx in 0usize..3,
    ) {
        let momentum = [0.9f32, 0.99, 1.0][momentum_idx];
        let mut cfg = fleet_config(
            &format!("degen-{seed}-{momentum}"),
            vec![GpuSpec::k80(), GpuSpec::t4()],
            2,
        );
        cfg.tuner.seed = seed;
        cfg.seed = seed;
        cfg.momentum = momentum;
        let fleet_result = Fleet::new(cfg.clone())
            .run()
            .expect("fleet run")
            .result
            .expect("completed");

        let pre = pretrain_samples(
            &cfg.roster[0],
            &cfg.workloads,
            cfg.pretrain_per_workload,
            cfg.seed,
        );
        let mut siamese = pretrain_pacm(&pre, cfg.pretrain_epochs, cfg.tuner.seed);
        let mut chain = Vec::new();
        for spec in &cfg.roster {
            let mut tuner = Tuner::new(
                spec.clone(),
                cfg.tuner,
                ModelSetup::Mtl { pretrained: siamese.clone(), momentum: cfg.momentum },
            );
            for (wl, weight) in &cfg.workloads {
                tuner.add_task(wl.clone(), *weight);
            }
            chain.push(tuner.run());
            siamese = tuner.mtl().expect("MTL campaign").siamese().clone();
        }
        prop_assert_eq!(
            serde_json::to_string(&fleet_result.results).unwrap(),
            serde_json::to_string(&chain).unwrap(),
            "2-device fleet must match the manual MTL chain byte for byte"
        );
    }
}

/// The `FleetResult` written by `--output` must parse back losslessly —
/// the schema the CI smoke job checks.
#[test]
fn fleet_result_roundtrips_through_json() {
    let cfg = fleet_config("roundtrip", vec![GpuSpec::k80(), GpuSpec::t4()], 1);
    let result = Fleet::new(cfg).run().unwrap().result.unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let parsed: FleetResult = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&parsed).unwrap());
}
