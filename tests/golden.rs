//! Golden regression: the quick matmul campaign's exact tuning curve.
//!
//! Serializes the `TuningCurve` (plus the final best latency) of a fixed
//! campaign — seed 42, simulated T4, one 512×512×512 matmul,
//! `TunerConfig::quick()` — and compares it byte-for-byte against
//! `tests/golden/quick_matmul_t4.json`. Any change to sampling, the GA,
//! PSA, the cost models, the simulator or the tuner that shifts this
//! campaign shows up here as a diff.
//!
//! To refresh after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden
//! ```
//!
//! The campaign runs at the host's default thread count; the parallel
//! pipeline guarantees the result is identical at any thread count, so the
//! golden file is stable across machines.

use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::tuner::{TunerConfig, TuningCurve};
use pruner::Pruner;
use serde::Serialize;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/quick_matmul_t4.json");

/// Everything the golden file pins down.
#[derive(Serialize)]
struct GoldenRecord {
    curve: TuningCurve,
    best_latency_s: f64,
    trials: u64,
}

/// CI's fault-injection job reruns this suite with FAULT_RATE=0.25; at a
/// non-zero rate the curve legitimately differs from the golden file, so
/// the byte-compare is skipped while reproducibility and monotonicity
/// still hold.
fn fault_rate_from_env() -> f64 {
    std::env::var("FAULT_RATE")
        .ok()
        .map(|v| v.parse().expect("FAULT_RATE must be a float"))
        .unwrap_or(0.0)
}

fn campaign() -> GoldenRecord {
    let mut builder = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 512, 512, 512))
        .config(TunerConfig::quick())
        .seed(42)
        .fault_rate(fault_rate_from_env());
    // CI runs this under a THREADS=1 / THREADS=4 matrix: the golden file
    // must match at every pipeline width, not just the host default.
    if let Ok(threads) = std::env::var("THREADS") {
        builder = builder.threads(threads.parse().expect("THREADS must be an integer"));
    }
    let result = builder.build().tune();
    GoldenRecord {
        best_latency_s: result.best_latency_s,
        trials: result.stats.trials,
        curve: result.curve,
    }
}

#[test]
fn quick_matmul_campaign_matches_golden_curve() {
    let record = campaign();
    let actual = serde_json::to_string_pretty(&record).expect("curve serializes");

    if fault_rate_from_env() != 0.0 {
        // Fault injection changes the trajectory by design; the golden
        // byte-compare only pins the zero-fault campaign. Check what must
        // still hold: a monotone curve ending at the reported best.
        let lats: Vec<f64> = record.curve.points().iter().map(|p| p.best_latency_s).collect();
        assert!(lats.windows(2).all(|w| w[1] <= w[0] + 1e-12), "curve must stay monotone");
        assert_eq!(record.curve.final_latency(), record.best_latency_s);
        eprintln!("FAULT_RATE set: skipping golden byte-compare");
        return;
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, actual.as_bytes()).expect("write golden");
        eprintln!("golden file refreshed: {GOLDEN_PATH}");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden file {GOLDEN_PATH} ({e}); \
             run with UPDATE_GOLDEN=1 to generate it"
        )
    });
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "the quick campaign's curve changed; if intentional, refresh with \
         UPDATE_GOLDEN=1 cargo test --release --test golden"
    );
}

#[test]
fn golden_campaign_is_reproducible_in_process() {
    // The exact-compare above is only meaningful if the campaign itself is
    // bit-stable within one build.
    let a = serde_json::to_string_pretty(&campaign()).unwrap();
    let b = serde_json::to_string_pretty(&campaign()).unwrap();
    assert_eq!(a, b);
}
