//! Integration: smoke-scale versions of the paper's headline claims.
//!
//! These are the experiment benches in miniature — cheap enough for CI,
//! strong enough that a regression in any component (sketch diversity,
//! simulator signal, PSA penalties, PaCM learning, MTL stability) trips at
//! least one of them.

use pruner::cost::metrics::{best_k, spearman, SpaceEval};
use pruner::cost::{CostModel, ModelKind, Sample};
use pruner::dataset::Dataset;
use pruner::gpu::{GpuSpec, Simulator};
use pruner::ir::{zoo, Workload};
use pruner::psa::Psa;
use pruner::sketch::evolve;
use pruner::tuner::{pretrain_pacm, ModelSetup, Tuner, TunerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Table 1 in miniature: the PSA target space preserves better programs
/// than random sampling of equal size.
#[test]
fn claim_target_space_beats_random() {
    let spec = GpuSpec::t4();
    let sim = Simulator::new(spec.clone());
    let psa = Psa::new(spec.clone());
    let limits = spec.limits();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut target_spaces = Vec::new();
    let mut random_spaces = Vec::new();
    for wl in [
        Workload::matmul(1, 1024, 1024, 1024),
        Workload::conv2d(1, 64, 28, 28, 64, 3, 1, 1),
        Workload::matmul(1, 512, 2048, 512),
    ] {
        let pool = evolve::init_population(&wl, 768, &limits, &mut rng);
        let lats: Vec<f64> = pool.iter().map(|p| sim.latency(p)).collect();
        let optimum = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let target = psa.prune(pool.clone(), 96);
        target_spaces.push(SpaceEval {
            weight: 1,
            full_optimum: optimum,
            space_latencies: target.iter().map(|p| sim.latency(p)).collect(),
        });
        random_spaces.push(SpaceEval {
            weight: 1,
            full_optimum: optimum,
            space_latencies: lats[..96].to_vec(),
        });
    }
    let t = best_k(&target_spaces, 1);
    let r = best_k(&random_spaces, 1);
    assert!(t >= r, "target space Best-1 {t} must be at least random {r}");
    assert!(t > 0.9, "target space should nearly preserve the optimum, got {t}");
}

/// Table 2 in miniature: a trained PaCM ranks unseen schedules of a held
/// -out task better than chance.
#[test]
fn claim_pacm_generalizes_to_unseen_task() {
    let ds = Dataset::generate(
        &GpuSpec::t4(),
        &[zoo::bert_tiny(1, 128), zoo::mobilenet_v2(1)],
        24,
        3,
    );
    let (train, test) = ds.split(0.75, 1);
    assert!(!test.is_empty());
    let mut model = ModelKind::Pacm.build(2);
    model.fit(&train, 12);
    // Spearman of score vs negative latency per held-out task, averaged.
    let mut rhos = Vec::new();
    let tasks: std::collections::BTreeSet<usize> = test.iter().map(|s| s.task_id).collect();
    for task in tasks {
        let subset: Vec<Sample> =
            test.iter().filter(|s| s.task_id == task).cloned().collect();
        if subset.len() < 8 {
            continue;
        }
        let scores: Vec<f64> =
            model.predict(&subset).iter().map(|&v| v as f64).collect();
        let neg: Vec<f64> = subset.iter().map(|s| -s.latency).collect();
        rhos.push(spearman(&scores, &neg));
    }
    let mean = rhos.iter().sum::<f64>() / rhos.len() as f64;
    assert!(mean > 0.25, "mean held-out Spearman too low: {mean:.3} over {} tasks", rhos.len());
}

/// Figures 8/10 in miniature: under an equal budget, Pruner's campaign
/// ends at least as fast as Ansor's, and PSA + PaCM reach Ansor's final
/// latency in less search time.
#[test]
fn claim_pruner_campaign_dominates_ansor() {
    let net = {
        let mut n = pruner::ir::Network::new("mini");
        n.add(Workload::matmul(1, 1024, 1024, 1024), 1);
        n.add(Workload::conv2d(1, 64, 28, 28, 64, 3, 1, 1), 2);
        n
    };
    // Seed 7 is a representative draw (Pruner ~2x faster to parity); at
    // this smoke-test budget (160 trials) individual seeds are noisy, so
    // the assertion tolerance is loose — the bench harness averages over
    // networks for the real Figure 10 numbers.
    let cfg = TunerConfig {
        rounds: 20,
        measure_per_round: 8,
        space_size: 128,
        target_pool: 512,
        seed: 7,
        ..TunerConfig::default()
    };
    let run = |use_psa: bool, kind: ModelKind| {
        let mut c = cfg;
        c.use_psa = use_psa;
        let mut t = Tuner::new(GpuSpec::t4(), c, ModelSetup::Fresh(kind));
        t.add_network(&net);
        t.run()
    };
    let ansor = run(false, ModelKind::Ansor);
    let pruner = run(true, ModelKind::Pacm);
    assert!(
        pruner.best_latency_s <= ansor.best_latency_s * 1.05,
        "pruner {} should at least match ansor {}",
        pruner.best_latency_s,
        ansor.best_latency_s
    );
    let parity = pruner.curve.time_to_reach(ansor.best_latency_s);
    assert!(parity.is_some(), "pruner never reached ansor's final latency");
    assert!(
        parity.unwrap() <= ansor.stats.total_s(),
        "no search-time saving: {} vs {}",
        parity.unwrap(),
        ansor.stats.total_s()
    );
}

/// §2.5 in miniature: MTL fine-tuning does not collapse — after several
/// rounds the Siamese model still ranks its pre-training platform well,
/// while the target adapts to the new one.
#[test]
fn claim_mtl_is_stable() {
    let k80 = Dataset::generate(&GpuSpec::k80(), &[zoo::bert_tiny(1, 128)], 24, 7);
    let pre = pretrain_pacm(&k80.to_samples(), 10, 1);
    let probe = k80.to_samples();
    let rho_of = |m: &mut dyn CostModel| {
        let scores: Vec<f64> = m.predict(&probe).iter().map(|&v| v as f64).collect();
        let neg: Vec<f64> = probe.iter().map(|s| -s.latency).collect();
        spearman(&scores, &neg)
    };
    let before = rho_of(pre.clone_box().as_mut());

    let t4 = Dataset::generate(&GpuSpec::t4(), &[zoo::bert_tiny(1, 128)], 24, 8);
    let mut mtl = pruner::tuner::Mtl::with_paper_momentum(pre);
    for _ in 0..6 {
        let _target = mtl.round(&t4.to_samples(), 2, 1);
    }
    let mut siamese = mtl.siamese().clone();
    let after = rho_of(&mut siamese);
    assert!(
        after > before - 0.15,
        "siamese collapsed on its source platform: {before:.3} -> {after:.3}"
    );
}
