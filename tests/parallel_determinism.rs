//! Integration: the parallel candidate-evaluation pipeline is bit-identical
//! at every thread count.
//!
//! The tentpole guarantee of the worker fan-out is that `threads` is purely
//! a scheduling knob: candidate generation derives one RNG stream per item,
//! PSA drafting and cost-model inference band the work and merge in index
//! order, and the ε-retention draw stays on the sequential campaign RNG.
//! These tests drive whole campaigns through `Tuner::run` at 1/2/4/8
//! threads and demand identical curves, latencies and simulated-time
//! ledgers.

use proptest::prelude::*;
use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::trace::{mask_host_fields, TraceHandle};
use pruner::tuner::{TunerConfig, TuningResult};
use pruner::Pruner;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A campaign small enough to run dozens of times under proptest.
///
/// CI's fault-injection job reruns this suite with FAULT_RATE=0.25: the
/// thread-count-invariance guarantee must survive injected hardware
/// failures, retries and quarantining.
fn tiny_config() -> TunerConfig {
    let fault_rate = std::env::var("FAULT_RATE")
        .ok()
        .map(|v| v.parse().expect("FAULT_RATE must be a float"))
        .unwrap_or(0.0);
    TunerConfig {
        rounds: 3,
        measure_per_round: 3,
        space_size: 32,
        target_pool: 96,
        fault_rate,
        ..TunerConfig::default()
    }
}

fn campaign(wl: &Workload, seed: u64, use_psa: bool, threads: usize) -> TuningResult {
    let mut builder = Pruner::builder(GpuSpec::t4())
        .workload(wl.clone())
        .config(tiny_config())
        .model(ModelKind::Ansor) // cheapest learned model
        .seed(seed)
        .threads(threads);
    if !use_psa {
        builder = builder.without_psa();
    }
    builder.build().tune()
}

fn traced_campaign(
    wl: &Workload,
    seed: u64,
    use_psa: bool,
    threads: usize,
) -> (TuningResult, TraceHandle) {
    let trace = TraceHandle::new();
    let mut builder = Pruner::builder(GpuSpec::t4())
        .workload(wl.clone())
        .config(tiny_config())
        .model(ModelKind::Ansor)
        .seed(seed)
        .threads(threads)
        .recorder(Box::new(trace.clone()));
    if !use_psa {
        builder = builder.without_psa();
    }
    (builder.build().tune(), trace)
}

fn assert_identical(a: &TuningResult, b: &TuningResult, threads: usize) {
    assert_eq!(
        a.best_latency_s, b.best_latency_s,
        "best latency diverged at {threads} threads"
    );
    assert_eq!(a.curve, b.curve, "tuning curve diverged at {threads} threads");
    assert_eq!(a.stats, b.stats, "time ledger diverged at {threads} threads");
    assert_eq!(
        a.per_task_best, b.per_task_best,
        "per-task results diverged at {threads} threads"
    );
    assert_eq!(
        a.best_programs, b.best_programs,
        "winning schedules diverged at {threads} threads"
    );
}

/// Strategy: workloads spanning all three sketch kinds.
fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (4u64..=6, 4u64..=6).prop_map(|(m, n)| Workload::matmul(1, 1 << m, 1 << n, 256)),
        (4u64..=6).prop_map(|c| Workload::conv2d(1, 1 << c, 14, 14, 32, 3, 1, 1)),
        (12u64..=16).prop_map(|p| Workload::elementwise(pruner::ir::EwKind::Relu, 1 << p)),
        (7u64..=9).prop_map(|o| Workload::reduction(1 << o, 256)),
    ]
}

proptest! {
    // Each case runs 4 full campaigns; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn campaigns_are_identical_at_any_thread_count(
        wl in arb_workload(),
        seed in 0u64..1000,
        use_psa in prop_oneof![Just(true), Just(false)],
    ) {
        let baseline = campaign(&wl, seed, use_psa, THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            let run = campaign(&wl, seed, use_psa, threads);
            assert_identical(&baseline, &run, threads);
        }
    }

    // Each case runs 4 full campaigns (2 untraced + 2 traced); the recorder
    // must be a pure observer at every thread count, and the masked trace
    // itself must be thread-count invariant.
    #[test]
    fn tracing_never_perturbs_a_campaign(
        wl in arb_workload(),
        seed in 0u64..1000,
        use_psa in prop_oneof![Just(true), Just(false)],
    ) {
        let mut masked_traces = Vec::new();
        for threads in [1usize, 4] {
            let plain = campaign(&wl, seed, use_psa, threads);
            let (traced, trace) = traced_campaign(&wl, seed, use_psa, threads);
            assert_identical(&plain, &traced, threads);
            masked_traces.push(mask_host_fields(&trace.to_jsonl()));
        }
        assert_eq!(
            masked_traces[0], masked_traces[1],
            "masked trace diverged between 1 and 4 threads"
        );
    }
}

#[test]
fn paper_scale_round_is_identical_across_threads() {
    // One round at the paper's full pool size, so the banded fan-out
    // actually spans many chunks per stage.
    let cfg = TunerConfig {
        rounds: 1,
        measure_per_round: 4,
        space_size: 128,
        target_pool: 2048,
        ..TunerConfig::default()
    };
    let run = |threads: usize| {
        Pruner::builder(GpuSpec::t4())
            .workload(Workload::matmul(1, 512, 512, 512))
            .config(cfg)
            .model(ModelKind::Pacm)
            .seed(42)
            .threads(threads)
            .build()
            .tune()
    };
    let baseline = run(1);
    for threads in [2, 4, 8] {
        assert_identical(&baseline, &run(threads), threads);
    }
}

#[test]
fn multi_task_network_is_identical_across_threads() {
    // Several tasks sharing one campaign: per-task seed folding must keep
    // the schedule and every per-task incumbent thread-count independent.
    let mut net = pruner::ir::Network::new("mini");
    net.add(Workload::matmul(1, 256, 256, 256), 2);
    net.add(Workload::reduction(1024, 256), 1);
    let run = |threads: usize| {
        Pruner::builder(GpuSpec::titan_v())
            .network(&net)
            .config(TunerConfig { rounds: 4, ..tiny_config() })
            .seed(7)
            .threads(threads)
            .build()
            .tune()
    };
    let baseline = run(1);
    for threads in [2, 8] {
        assert_identical(&baseline, &run(threads), threads);
    }
}
