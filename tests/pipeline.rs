//! Integration: the full draft-then-verify pipeline across every crate.

use pruner::cost::{ModelKind, Sample};
use pruner::gpu::{GpuSpec, Simulator};
use pruner::ir::Workload;
use pruner::psa::Psa;
use pruner::sketch::evolve;
use pruner::tuner::TunerConfig;
use pruner::Pruner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The core pipeline claim, end to end: drafting with PSA and verifying
/// with a trained PaCM finds better programs than either alone, under the
/// same measurement budget.
#[test]
fn draft_then_verify_beats_random_search() {
    let spec = GpuSpec::t4();
    let sim = Simulator::new(spec.clone());
    let limits = spec.limits();
    let wl = Workload::matmul(1, 1024, 1024, 1024);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let budget = 24;

    // Random search: measure `budget` random programs.
    let random_best = (0..budget)
        .map(|_| sim.latency(&pruner::sketch::Program::sample(&wl, &limits, &mut rng)))
        .fold(f64::INFINITY, f64::min);

    // Draft: PSA prunes 1024 candidates to 64.
    let psa = Psa::new(spec);
    let pool = evolve::init_population(&wl, 1024, &limits, &mut rng);
    let target = psa.prune(pool, 64);

    // Verify: PaCM trained on a handful of measurements ranks the target
    // space; measure its top picks.
    let mut model = ModelKind::Pacm.build(1);
    let train: Vec<Sample> = target
        .iter()
        .take(12)
        .map(|p| Sample::labeled(p, sim.latency(p), 0))
        .collect();
    model.fit(&train, 20);
    let rest: Vec<&pruner::sketch::Program> = target.iter().skip(12).collect();
    let samples: Vec<Sample> = rest.iter().map(|p| Sample::unlabeled(p, 0)).collect();
    let scores = model.predict(&samples);
    let mut idx: Vec<usize> = (0..rest.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let pipeline_best = idx
        .iter()
        .take(budget - 12)
        .map(|&i| sim.latency(rest[i]))
        .fold(f64::INFINITY, f64::min)
        .min(train.iter().map(|s| s.latency).fold(f64::INFINITY, f64::min));

    assert!(
        pipeline_best <= random_best,
        "pipeline {pipeline_best} should beat random {random_best}"
    );
}

/// The facade runs a complete campaign over a mixed network and reports a
/// consistent result object.
#[test]
fn facade_campaign_is_consistent() {
    let mut net = pruner::ir::Network::new("mixed");
    net.add(Workload::matmul(1, 256, 256, 256), 2);
    net.add(Workload::conv2d(1, 32, 28, 28, 32, 3, 1, 1), 1);
    net.add(Workload::elementwise(pruner::ir::EwKind::Relu, 1 << 16), 3);
    let result = Pruner::builder(GpuSpec::t4())
        .network(&net)
        .config(TunerConfig::quick())
        .seed(3)
        .build()
        .tune();

    // The weighted best must equal the weighted sum of per-task bests.
    let manual: f64 = result
        .per_task_best
        .iter()
        .zip(net.subgraphs())
        .map(|((wl, lat), sg)| {
            assert_eq!(*wl, sg.workload);
            sg.weight as f64 * lat
        })
        .sum();
    assert!((manual - result.best_latency_s).abs() < 1e-12);

    // The curve must end at the final result and be non-increasing.
    let pts = result.curve.points();
    assert_eq!(pts.last().unwrap().best_latency_s, result.best_latency_s);
    assert!(pts.windows(2).all(|w| w[1].best_latency_s <= w[0].best_latency_s + 1e-15));
    // Search-time ledger must be self-consistent.
    assert!(result.stats.total_s() >= result.stats.measure_time_s);
    assert_eq!(pts.last().unwrap().trials, result.stats.trials);
}

/// PSA ablations plug into the full campaign (Table 4/5 plumbing).
#[test]
fn psa_ablation_plumbs_through_builder() {
    let cfg = TunerConfig::quick();
    let result = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 256, 256, 256))
        .config(cfg)
        .psa_config(pruner::psa::PsaConfig::without_compute())
        .seed(4)
        .build()
        .tune();
    assert!(result.best_latency_s.is_finite());
}
