//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use pruner::cost::metrics::{best_k, top_k, SpaceEval, TaskEval};
use pruner::gpu::{GpuSpec, Simulator};
use pruner::ir::{EwKind, Workload};
use pruner::psa::Psa;
use pruner::sketch::{split, HardwareLimits, Program};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a plausible tuning workload of any of the five kinds.
fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        (1u64..=8, 8u64..=512, 8u64..=512, 8u64..=512)
            .prop_map(|(b, m, n, k)| Workload::matmul(b, m, n, k)),
        (1u64..=2, 3u64..=128, 8u64..=64, 8u64..=128, 1u64..=3, 1u64..=2)
            .prop_map(|(n, c, hw, co, k, s)| {
                let k = 2 * k - 1; // odd kernels 1/3/5
                let pad = k / 2;
                Workload::conv2d(n, c, hw.max(k), hw.max(k), co, k, s, pad)
            }),
        (1u64..=2, 8u64..=256, 8u64..=64, 1u64..=2)
            .prop_map(|(n, c, hw, s)| Workload::dwconv2d(n, c, hw.max(3), hw.max(3), 3, s, 1)),
        (1u64..=20u64).prop_map(|p| Workload::elementwise(EwKind::Relu, 1 << (p + 4))),
        (8u64..=4096, 8u64..=4096).prop_map(|(o, r)| Workload::reduction(o, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampled_programs_are_valid_and_stats_sane(wl in arb_workload(), seed in 0u64..1000) {
        let limits = HardwareLimits::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(&wl, &limits, &mut rng);
        prop_assert!(prog.is_valid(&limits));
        let stats = prog.stats();
        // Work never shrinks below the mathematical requirement.
        prop_assert!(stats.flops_total >= wl.flops() * 0.999);
        prop_assert!(stats.padding_waste >= 1.0 - 1e-12);
        // Minimal traffic: every output element is written at least once.
        prop_assert!(stats.global_bytes + 1.0 >= wl.output_elems() as f64 * 4.0);
        prop_assert!(stats.threads_per_block >= 1);
        prop_assert!(stats.num_blocks >= 1);
        // Buffer statements partition the global traffic.
        let stmt_bytes: f64 = stats.stmts.iter().map(|s| s.global_bytes).sum();
        prop_assert!((stmt_bytes - stats.global_bytes).abs() <= stats.global_bytes * 1e-9 + 1.0);
    }

    #[test]
    fn simulator_respects_roofline(wl in arb_workload(), seed in 0u64..500) {
        let spec = GpuSpec::a100();
        let sim = Simulator::new(spec.clone());
        let limits = spec.limits();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(&wl, &limits, &mut rng);
        let lat = sim.latency(&prog);
        prop_assert!(lat.is_finite() && lat > 0.0);
        // The quirk term allows at most ±6%; nothing beats 90% of roofline.
        prop_assert!(lat >= sim.roofline(&wl) * 0.9, "{lat} vs roofline {}", sim.roofline(&wl));
    }

    #[test]
    fn psa_estimate_positive_and_finite(wl in arb_workload(), seed in 0u64..500) {
        let spec = GpuSpec::t4();
        let psa = Psa::new(spec.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(&wl, &spec.limits(), &mut rng);
        let est = psa.estimate(&prog);
        prop_assert!(est.is_finite() && est > 0.0);
    }

    #[test]
    fn split_product_invariant(extent in 1u64..=4096, parts in 1usize..=5, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = split::sample_split(&mut rng, extent, parts);
        prop_assert_eq!(s.len(), parts);
        prop_assert_eq!(s.iter().product::<u64>(), extent);
    }

    #[test]
    fn mutation_preserves_validity(wl in arb_workload(), seed in 0u64..200) {
        let limits = HardwareLimits::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = Program::sample(&wl, &limits, &mut rng);
        for _ in 0..5 {
            let m = pruner::sketch::evolve::mutate(&p, &limits, &mut rng);
            prop_assert!(m.is_valid(&limits));
            prop_assert_eq!(&m.workload, &wl);
        }
    }

    #[test]
    fn top_k_bounds(latencies in prop::collection::vec(1e-6f64..1e-1, 2..40),
                    scores in prop::collection::vec(-10f32..10.0, 40),
                    k in 1usize..=10) {
        let n = latencies.len();
        let task = TaskEval { weight: 1, latencies, scores: scores[..n].to_vec() };
        let v = top_k(&[task], k);
        prop_assert!(v > 0.0 && v <= 1.0 + 1e-12, "top_k out of bounds: {}", v);
    }

    #[test]
    fn best_k_monotone_in_k(latencies in prop::collection::vec(1e-6f64..1e-1, 3..40)) {
        let optimum = latencies.iter().cloned().fold(f64::INFINITY, f64::min) * 0.9;
        let space = SpaceEval { weight: 1, full_optimum: optimum, space_latencies: latencies };
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let v = best_k(std::slice::from_ref(&space), k);
            prop_assert!(v <= prev + 1e-12, "best_k must not grow with k");
            prev = v;
        }
    }

    #[test]
    fn render_never_panics_and_mentions_launch(wl in arb_workload(), seed in 0u64..200) {
        let limits = HardwareLimits::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(&wl, &limits, &mut rng);
        let text = pruner::sketch::render::render(&prog);
        prop_assert!(text.contains("// launch: grid("));
        prop_assert!(text.contains("blockIdx.x"));
    }

    #[test]
    fn features_are_finite_for_any_program(wl in arb_workload(), seed in 0u64..200) {
        let limits = HardwareLimits::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(&wl, &limits, &mut rng);
        let s = pruner::cost::Sample::unlabeled(&prog, 0);
        prop_assert!(s.stmt.iter().all(|v| v.is_finite()));
        prop_assert!(s.flow.iter().all(|v| v.is_finite()));
        prop_assert!(s.tokens.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn vendor_oracle_never_beats_roofline(wl in arb_workload()) {
        let spec = GpuSpec::titan_v();
        let sim = Simulator::new(spec.clone());
        let v = pruner::gpu::vendor::vendor_latency(&spec, &wl);
        // Winograd can beat the *naive-algorithm* roofline by up to 2.25x,
        // but never physics by more.
        prop_assert!(v > sim.roofline(&wl) * 0.4, "vendor {} under roofline {}", v, sim.roofline(&wl));
        prop_assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn measurement_noise_is_bounded(seed in 0u64..200) {
        let spec = GpuSpec::orin();
        let sim = Simulator::new(spec.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = Program::sample(
            &Workload::matmul(1, 256, 256, 256), &spec.limits(), &mut rng);
        let base = sim.latency(&prog);
        let noisy = sim.measure(&prog, seed);
        prop_assert!((noisy / base - 1.0).abs() < 0.2, "noise too large: {} vs {}", noisy, base);
    }
}
