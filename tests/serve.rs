//! Service-level end-to-end tests for the `pruner-serve` daemon.
//!
//! Everything here drives a *real* daemon over a *real* Unix domain
//! socket — the daemon runs in-process (so a test failure leaves no
//! orphan), but every request crosses the wire format exactly as an
//! external client's would.
//!
//! The contract under test is the serving determinism guarantee:
//!
//! 1. a campaign submitted to the daemon produces a result (and store
//!    records) byte-identical to the same campaign run through the
//!    one-shot API,
//! 2. a daemon killed mid-flight and restarted on the same state
//!    directory resumes *every* in-flight tenant and still converges to
//!    those same bytes, and
//! 3. concurrent tenants sharing one store leave it holding exactly the
//!    union of what each would have recorded alone.
//!
//! A final test keeps `docs/SERVING.md` honest: every wire-format
//! example line in the doc must parse as a valid request or response.

use pruner::cost::ModelKind;
use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::serve::{Client, Daemon, Request, Response, ServeConfig};
use pruner::store::Store;
use pruner::tuner::{ModelSetup, Tuner, TunerConfig, TuningResult};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pruner-serve-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Small-but-real campaign config: several checkpoint boundaries so a
/// kill always lands between durable states, finishes in seconds.
fn serve_config(seed: u64) -> TunerConfig {
    TunerConfig {
        rounds: 6,
        measure_per_round: 3,
        space_size: 32,
        target_pool: 96,
        checkpoint_every: 2,
        seed,
        ..TunerConfig::default()
    }
}

/// Each tenant tunes a *different* shape so shared-store dedup keys are
/// disjoint across tenants and the exact-union assertion is byte-exact.
fn tenant_workload(i: usize) -> Workload {
    Workload::matmul(1, 64 << i, 64, 64)
}

/// The one-shot golden for a tenant: same spec, config and workload as
/// the daemon submission, record-only store on the side.
fn solo_run(seed: u64, workload: &Workload, store_path: &Path) -> TuningResult {
    let mut t = Tuner::new(GpuSpec::t4(), serve_config(seed), ModelSetup::Fresh(ModelKind::Pacm));
    t.add_task(workload.clone(), 1);
    t.set_store(Store::open(store_path).expect("solo store opens"), false);
    let result = t.run();
    t.store().expect("store attached").flush().expect("solo store flushes");
    result
}

fn result_bytes(result: &TuningResult) -> String {
    serde_json::to_string(result).expect("result serializes")
}

fn store_lines(path: &Path) -> BTreeSet<String> {
    fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .map(str::to_owned)
        .collect()
}

fn submit(client: &mut Client, tenant: &str, seed: u64, workload: &Workload) -> String {
    let req = Request::SubmitCampaign {
        tenant: tenant.to_owned(),
        spec: GpuSpec::t4(),
        workloads: vec![(workload.clone(), 1)],
        config: serve_config(seed),
        model: None,
    };
    match client.call(&req).expect("submit crosses the wire") {
        Response::Submitted { campaign } => campaign,
        other => panic!("submit answered {other:?}"),
    }
}

fn status(client: &mut Client, campaign: &str) -> (String, Option<f64>, Option<String>) {
    let req = Request::Status { campaign: campaign.to_owned() };
    match client.call(&req).expect("status crosses the wire") {
        Response::Status { state, best_latency_s, result, .. } => (state, best_latency_s, result),
        other => panic!("status answered {other:?}"),
    }
}

fn wait_done(client: &mut Client, campaign: &str) -> (Option<f64>, Option<String>) {
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let (state, best, result) = status(client, campaign);
        match state.as_str() {
            "done" => return (best, result),
            "queued" | "running" => {
                assert!(std::time::Instant::now() < deadline, "campaign {campaign} timed out");
                std::thread::sleep(Duration::from_millis(30));
            }
            other => panic!("campaign {campaign} ended {other}"),
        }
    }
}

/// Submit → status → complete lifecycle, plus the small verbs (predict,
/// cancel bookkeeping, shutdown) against one resident daemon.
#[test]
fn daemon_lifecycle_submit_status_predict_shutdown() {
    let dir = scratch_dir("lifecycle");
    let cfg = ServeConfig::new(dir.join("sock"), dir.join("state"));
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client =
        Client::connect_with_retry(daemon.socket(), Duration::from_secs(5)).expect("connects");

    // Unknown campaigns answer with a typed error, not a hangup.
    let req = Request::Status { campaign: "nobody-9999".into() };
    match client.call(&req).expect("error crosses the wire") {
        Response::Error { message } => assert!(message.contains("nobody-9999")),
        other => panic!("unknown campaign answered {other:?}"),
    }

    // PredictOnly works against a built-in model kind with no campaign.
    let programs =
        vec![pruner::sketch::Program::fallback(&tenant_workload(0))];
    let req = Request::PredictOnly { model: "pacm".into(), programs };
    match client.call(&req).expect("predict crosses the wire") {
        Response::Scores { scores } => {
            assert_eq!(scores.len(), 1);
            assert!(scores[0].is_finite());
        }
        other => panic!("predict answered {other:?}"),
    }

    let id = submit(&mut client, "alice", 42, &tenant_workload(0));
    assert!(id.starts_with("alice-"), "campaign id {id} carries its tenant");
    let (state, _, _) = status(&mut client, &id);
    assert!(
        matches!(state.as_str(), "queued" | "running" | "done"),
        "fresh campaign reports a live state, got {state}"
    );
    let (best, result) = wait_done(&mut client, &id);
    let best = best.expect("finished campaign reports best latency");
    assert!(best > 0.0 && best.is_finite());
    let result = result.expect("finished campaign ships its result");
    assert!(result.contains("best_latency_s"));

    // Cancelling a finished campaign is a no-op error, not a crash.
    let req = Request::Cancel { campaign: id.clone() };
    match client.call(&req).expect("cancel crosses the wire") {
        Response::Error { .. } | Response::Cancelled { .. } => {}
        other => panic!("cancel answered {other:?}"),
    }

    match client.call(&Request::Shutdown).expect("shutdown crosses the wire") {
        Response::ShuttingDown => {}
        other => panic!("shutdown answered {other:?}"),
    }
    daemon.shutdown().expect("daemon tears down");
    assert!(dir.join("state").join("serve-trace.jsonl").exists(), "shutdown writes the trace");
    let _ = fs::remove_dir_all(&dir);
}

/// The serving determinism golden: a daemon-submitted campaign is
/// byte-identical — result JSON *and* store records — to the same
/// campaign run through the one-shot API.
#[test]
fn daemon_campaign_is_byte_identical_to_oneshot() {
    let dir = scratch_dir("golden");
    let workload = tenant_workload(0);
    let solo = solo_run(42, &workload, &dir.join("solo-store.jsonl"));

    let state = dir.join("state");
    let cfg = ServeConfig::new(dir.join("sock"), &state);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client =
        Client::connect_with_retry(daemon.socket(), Duration::from_secs(5)).expect("connects");
    let id = submit(&mut client, "alice", 42, &workload);
    let (_, wire_result) = wait_done(&mut client, &id);
    daemon.shutdown().expect("daemon tears down");

    let golden = result_bytes(&solo);
    assert_eq!(wire_result.as_deref(), Some(golden.as_str()), "wire result matches one-shot");
    let on_disk = fs::read_to_string(state.join("tenants/alice").join(&id).join("result.json"))
        .expect("daemon persisted result.json");
    assert_eq!(on_disk, golden, "persisted result matches one-shot byte-for-byte");
    assert_eq!(
        store_lines(&state.join("store.jsonl")),
        store_lines(&dir.join("solo-store.jsonl")),
        "daemon store records match the one-shot store"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Kill the daemon with four tenants in flight, restart it on the same
/// state directory: every tenant resumes and still converges to its
/// one-shot bytes.
#[test]
fn killed_daemon_restart_resumes_every_tenant() {
    let dir = scratch_dir("restart");
    const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

    let mut goldens = Vec::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let solo_store = dir.join(format!("solo-{tenant}.jsonl"));
        goldens.push(result_bytes(&solo_run(100 + i as u64, &tenant_workload(i), &solo_store)));
    }

    let state = dir.join("state");
    let mut cfg = ServeConfig::new(dir.join("sock"), &state);
    cfg.workers = 2; // half the tenants queued, half running at the kill
    let daemon = Daemon::start(cfg.clone()).expect("daemon starts");
    let mut client =
        Client::connect_with_retry(daemon.socket(), Duration::from_secs(5)).expect("connects");
    let ids: Vec<String> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, tenant)| submit(&mut client, tenant, 100 + i as u64, &tenant_workload(i)))
        .collect();
    drop(client);
    // Let the running campaigns make some progress (and likely cross a
    // checkpoint boundary), then pull the plug without any teardown
    // courtesy: no final store flush, no trace write, queues dropped.
    std::thread::sleep(Duration::from_millis(300));
    daemon.kill();

    for (tenant, id) in TENANTS.iter().zip(&ids) {
        let campaign = state.join("tenants").join(tenant).join(id);
        assert!(campaign.join("manifest.json").exists(), "{id} manifest survives the kill");
        assert!(!campaign.join("result.json").exists(), "{id} had not finished");
    }

    let daemon = Daemon::start(cfg).expect("daemon restarts on the same state dir");
    assert_eq!(daemon.resumed(), TENANTS.len() as u64, "every in-flight tenant resumes");
    let mut client =
        Client::connect_with_retry(daemon.socket(), Duration::from_secs(5)).expect("reconnects");
    for (i, id) in ids.iter().enumerate() {
        let (_, wire_result) = wait_done(&mut client, id);
        assert_eq!(
            wire_result.as_deref(),
            Some(goldens[i].as_str()),
            "{}: resumed campaign matches its one-shot bytes",
            TENANTS[i]
        );
    }
    daemon.shutdown().expect("daemon tears down");
    let _ = fs::remove_dir_all(&dir);
}

/// Concurrent-tenant soak: four tenants with distinct seeds tuning at
/// once. Per-tenant results are byte-identical to their solo runs and
/// the shared store ends up holding exactly the union of the four solo
/// stores.
#[test]
fn concurrent_tenants_match_solo_and_store_is_exact_union() {
    let dir = scratch_dir("soak");
    const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

    let mut goldens = Vec::new();
    let mut union = BTreeSet::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let solo_store = dir.join(format!("solo-{tenant}.jsonl"));
        goldens.push(result_bytes(&solo_run(200 + i as u64, &tenant_workload(i), &solo_store)));
        union.extend(store_lines(&solo_store));
    }

    let state = dir.join("state");
    let mut cfg = ServeConfig::new(dir.join("sock"), &state);
    cfg.workers = 4; // all four tenants genuinely concurrent
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client =
        Client::connect_with_retry(daemon.socket(), Duration::from_secs(5)).expect("connects");
    let ids: Vec<String> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, tenant)| submit(&mut client, tenant, 200 + i as u64, &tenant_workload(i)))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let (_, wire_result) = wait_done(&mut client, id);
        assert_eq!(
            wire_result.as_deref(),
            Some(goldens[i].as_str()),
            "{}: concurrent campaign matches its solo bytes",
            TENANTS[i]
        );
    }
    daemon.shutdown().expect("daemon tears down");
    assert_eq!(
        store_lines(&state.join("store.jsonl")),
        union,
        "shared store is the exact union of the four solo stores"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Every wire-format example line in `docs/SERVING.md` must parse — the
/// doc cannot drift from the implementation.
#[test]
fn serving_doc_examples_parse() {
    let doc = fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVING.md"))
        .expect("docs/SERVING.md exists");
    let mut requests = 0usize;
    let mut responses = 0usize;
    for line in doc.lines().map(str::trim) {
        if !line.starts_with("{\"v\":") {
            continue;
        }
        let as_request = Request::parse_line(line);
        let as_response = Response::parse_line(line);
        assert!(
            as_request.is_ok() || as_response.is_ok(),
            "doc example does not parse as request ({as_request:?}) or response \
             ({as_response:?}): {line}"
        );
        if as_request.is_ok() {
            requests += 1;
        } else {
            responses += 1;
        }
    }
    assert!(requests >= 3, "SERVING.md shows at least three request examples, found {requests}");
    assert!(responses >= 3, "SERVING.md shows at least three response examples, found {responses}");
}
