//! Integration: physical sanity of the GPU substrate across platforms.
//!
//! The experiments only need *relative* orderings, but those orderings are
//! trustworthy only if the simulator responds to resources the way real
//! GPUs do: bandwidth-bound kernels scale with DRAM bandwidth,
//! compute-bound kernels with peak FLOPs, work scales linearly with batch,
//! and tuned latency is bounded below by the roofline.

mod common;

use common::best_of;
use pruner::gpu::{GpuSpec, Simulator};
use pruner::ir::{EwKind, Workload};
use pruner::sketch::Program;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn bandwidth_bound_kernels_scale_with_dram() {
    // A big element-wise map moves bytes; compute is negligible.
    let wl = Workload::elementwise(EwKind::Add, 1 << 24);
    let a100 = best_of(&Simulator::new(GpuSpec::a100()), &wl, 40, 1);
    let orin = best_of(&Simulator::new(GpuSpec::orin()), &wl, 40, 1);
    let ratio = orin / a100;
    // ≈ 7.6, derived from the specs under test rather than hardcoded.
    let bw_ratio = GpuSpec::a100().dram_gbps / GpuSpec::orin().dram_gbps;
    assert!(
        (bw_ratio * 0.4..bw_ratio * 2.0).contains(&ratio),
        "bandwidth scaling off: got {ratio:.1}, bandwidth ratio {bw_ratio:.1}"
    );
}

#[test]
fn compute_bound_kernels_scale_with_flops() {
    let wl = Workload::matmul(1, 2048, 2048, 2048);
    let titan = best_of(&Simulator::new(GpuSpec::titan_v()), &wl, 40, 2);
    let t4 = best_of(&Simulator::new(GpuSpec::t4()), &wl, 40, 2);
    let ratio = t4 / titan;
    // ≈ 1.84, derived from the specs under test rather than hardcoded.
    let flops_ratio = GpuSpec::titan_v().peak_gflops / GpuSpec::t4().peak_gflops;
    assert!(
        (flops_ratio * 0.5..flops_ratio * 2.0).contains(&ratio),
        "compute scaling off: got {ratio:.2}, flops ratio {flops_ratio:.2}"
    );
}

#[test]
fn batch_scales_latency_roughly_linearly() {
    let sim = Simulator::new(GpuSpec::t4());
    // Use a fixed schedule shape scaled by batch so the comparison is
    // apples to apples.
    let b1 = best_of(&sim, &Workload::conv2d(1, 128, 28, 28, 128, 3, 1, 1), 60, 3);
    let b4 = best_of(&sim, &Workload::conv2d(4, 128, 28, 28, 128, 3, 1, 1), 60, 3);
    let ratio = b4 / b1;
    assert!(
        (1.8..8.0).contains(&ratio),
        "4x work should cost ~2-6x once overheads amortize, got {ratio:.2}"
    );
}

#[test]
fn nothing_beats_the_roofline_anywhere() {
    for spec in GpuSpec::all() {
        let sim = Simulator::new(spec.clone());
        let limits = spec.limits();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for wl in [
            Workload::matmul(1, 512, 512, 512),
            Workload::dwconv2d(1, 96, 56, 56, 3, 1, 1),
            Workload::reduction(4096, 512),
        ] {
            let roof = sim.roofline(&wl);
            for _ in 0..20 {
                let lat = sim.latency(&Program::sample(&wl, &limits, &mut rng));
                assert!(
                    lat >= roof * 0.9,
                    "{}: {} beat the roofline {roof} on {wl}",
                    spec.name,
                    lat
                );
            }
        }
    }
}

#[test]
fn launch_overhead_floors_tiny_kernels() {
    let sim = Simulator::new(GpuSpec::t4());
    let tiny = best_of(&sim, &Workload::elementwise(EwKind::Relu, 256), 20, 5);
    // The quirk term can shave up to ~6% off the base cost.
    assert!(
        tiny >= sim.spec().launch_overhead_us * 1e-6 * 0.9,
        "a 256-element kernel cannot run faster than its launch"
    );
}
