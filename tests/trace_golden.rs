//! Golden snapshot of the trace JSONL schema.
//!
//! Runs the same fixed campaign as `tests/golden.rs` — seed 42, simulated
//! T4, one 512×512×512 matmul, `TunerConfig::quick()` — with a
//! `TraceHandle` installed, masks the host-timing fields (`host_*`, the
//! only nondeterministic values in a trace), and compares the result
//! byte-for-byte against `tests/golden/quick_matmul_t4_trace.jsonl`. Any
//! change to the record kinds, field names, field order or deterministic
//! values is a schema change and shows up here as a diff; intentional
//! changes must bump `pruner_trace::SCHEMA_VERSION` and refresh with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test trace_golden
//! ```
//!
//! The masked trace is thread-count invariant (deterministic records never
//! mention the worker count), so the golden file is stable under CI's
//! THREADS matrix, like the curve golden.

use pruner::gpu::GpuSpec;
use pruner::ir::Workload;
use pruner::trace::{mask_host_fields, TraceHandle, SCHEMA_VERSION};
use pruner::tuner::{TunerConfig, TuningResult};
use pruner::Pruner;

const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/quick_matmul_t4_trace.jsonl");

/// CI's fault-injection job reruns this suite with FAULT_RATE=0.25; the
/// fault/quarantine records legitimately differ from the golden file then,
/// so the byte-compare is skipped while the schema invariants still hold.
fn fault_rate_from_env() -> f64 {
    std::env::var("FAULT_RATE")
        .ok()
        .map(|v| v.parse().expect("FAULT_RATE must be a float"))
        .unwrap_or(0.0)
}

fn traced_campaign() -> (TuningResult, TraceHandle) {
    let trace = TraceHandle::new();
    let mut builder = Pruner::builder(GpuSpec::t4())
        .workload(Workload::matmul(1, 512, 512, 512))
        .config(TunerConfig::quick())
        .seed(42)
        .fault_rate(fault_rate_from_env())
        .recorder(Box::new(trace.clone()));
    if let Ok(threads) = std::env::var("THREADS") {
        builder = builder.threads(threads.parse().expect("THREADS must be an integer"));
    }
    let result = builder.build().tune();
    (result, trace)
}

#[test]
fn quick_matmul_trace_matches_golden_schema() {
    let (result, trace) = traced_campaign();
    let masked = mask_host_fields(&trace.to_jsonl());

    // Schema invariants that hold at any fault rate.
    assert!(!masked.is_empty(), "a traced campaign must emit events");
    for line in masked.lines() {
        assert!(
            line.starts_with(&format!("{{\"v\":{SCHEMA_VERSION},\"type\":\"")),
            "every record is versioned: {line}"
        );
        let parsed = serde_json::parse_content(line)
            .unwrap_or_else(|e| panic!("invalid JSON ({e}): {line}"));
        match parsed {
            serde::Content::Map(fields) => {
                assert!(fields.iter().any(|(k, _)| k == "type"), "record kind missing: {line}")
            }
            other => panic!("record is not a JSON object: {other:?}"),
        }
        assert!(
            !line.contains("\"host_") || line.contains("\"***\""),
            "host fields must be masked: {line}"
        );
    }
    let rounds = masked.lines().filter(|l| l.contains("\"type\":\"round\"")).count();
    assert_eq!(
        rounds,
        result.curve.points().len() - 1,
        "one funnel record per tuning round"
    );

    if fault_rate_from_env() != 0.0 {
        eprintln!("FAULT_RATE set: skipping golden byte-compare");
        return;
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, masked.as_bytes()).expect("write golden");
        eprintln!("golden trace refreshed: {GOLDEN_PATH}");
        return;
    }

    let expected = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {GOLDEN_PATH} ({e}); \
             run with UPDATE_GOLDEN=1 to generate it"
        )
    });
    assert_eq!(
        masked, expected,
        "the trace schema or a deterministic payload changed; if intentional, bump \
         pruner_trace::SCHEMA_VERSION and refresh with UPDATE_GOLDEN=1 \
         cargo test --release --test trace_golden"
    );
}

#[test]
fn masked_trace_is_reproducible_in_process() {
    // The byte-compare above is only meaningful if two traced runs of the
    // same campaign agree on every deterministic byte.
    let (_, a) = traced_campaign();
    let (_, b) = traced_campaign();
    assert_eq!(mask_host_fields(&a.to_jsonl()), mask_host_fields(&b.to_jsonl()));
}

#[test]
fn trace_never_leaks_unmasked_nondeterminism() {
    // Every float that can differ between runs must live in a host_* field;
    // comparing two raw traces after masking proves no other field moved.
    let (_, a) = traced_campaign();
    let raw = a.to_jsonl();
    let masked = mask_host_fields(&raw);
    // Masking only rewrites host_* values — same line count, same kinds.
    assert_eq!(raw.lines().count(), masked.lines().count());
    for (r, m) in raw.lines().zip(masked.lines()) {
        if !r.contains("\"host_") {
            assert_eq!(r, m, "masking must not touch deterministic records");
        }
    }
}
