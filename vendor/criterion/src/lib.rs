//! Offline micro-benchmark harness with criterion's import surface.
//!
//! Provides `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a simple calibrated loop (warm-up, then enough
//! iterations to fill a small measurement budget) printing mean ns/iter —
//! no statistics engine, plots or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for compatibility;
/// the offline harness times every batch identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    /// Substring filter from the command line (cargo bench passes the
    /// trailing free argument through).
    filter: Option<String>,
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter, budget: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Accepted for compatibility with criterion's statistics engine; the
    /// offline harness sizes its measurement loop from the time budget
    /// instead of a fixed sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark if it passes the filter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { total: Duration::ZERO, iters: 0, budget: self.budget };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_secs_f64() * 1e9 / b.iters as f64
        };
        println!("{name:<48} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills the
        // budget without calling Instant::now around every single call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = target;
    }
}

/// Declares a group of benchmark functions.
///
/// Both the positional form (`criterion_group!(name, target, ...)`) and the
/// named form (`criterion_group! { name = ...; config = ...; targets = ... }`)
/// are supported, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_and_times() {
        let mut c = Criterion { filter: None, budget: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 1, "benchmark body must run more than once");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion { filter: None, budget: Duration::from_millis(5) };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("match-me".into()), budget: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
