//! Offline shim for the `crossbeam` scoped-thread API.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this shim
//! simply adapts `crossbeam::thread::scope`'s surface (closures receive the
//! scope, `scope` returns a `Result`) onto [`std::thread::scope`].

pub use crate::thread::scope;

pub mod thread {
    //! Scoped threads in the `crossbeam::thread` shape.

    /// Spawns scoped threads; the closure result is returned as `Ok` once
    /// every (joined or unjoined) thread has finished.
    ///
    /// Unlike upstream crossbeam, a panicking *unjoined* child aborts via
    /// `std::thread::scope`'s propagation instead of being collected into
    /// the `Err` variant; the workspace always joins or lets the scope
    /// propagate, so the distinction is unobservable here.
    ///
    /// # Errors
    /// Never returns `Err` (panics propagate instead); the `Result` exists
    /// for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    /// A handle for spawning threads that may borrow from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns work, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 97];
        crate::scope(|s| {
            for (i, chunk) in data.chunks_mut(10).enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 10 + j) as u64;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn join_returns_thread_value() {
        let answer = crate::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(answer, 42);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let v = crate::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 7);
                inner.join().unwrap()
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
