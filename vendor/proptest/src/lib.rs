//! Offline property-testing harness with proptest's import surface.
//!
//! Supports the features this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, `Strategy::prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Simplifications vs. upstream proptest: failing cases are reported by
//! panic (no shrinking — the failing inputs are printed instead), and each
//! test's RNG is seeded deterministically from the test's name, so runs
//! are reproducible by construction.

pub mod test_runner {
    //! Deterministic RNG used to drive generation.

    /// SplitMix64-based generator; deterministic per (name, case) pair.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds an RNG from a raw state.
        pub fn from_state(state: u64) -> TestRng {
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Seeds a [`TestRng`] from a test name (FNV-1a over the bytes).
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_state(h)
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds the union strategy.
        ///
        /// # Panics
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test (panics with the inputs
/// already printed by the harness on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each function runs its body for `cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    // Bind generated inputs; keep debuggable copies for the
                    // failure report.
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let run = std::panic::AssertUnwindSafe(|| { $body });
                    if let Err(payload) = std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest {}: failing case {}/{} (deterministic rerun will hit it again)",
                            stringify!($name), case + 1, cfg.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for("bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let xs = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!(xs.len() >= 2 && xs.len() < 5);
            assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (1u64..3).prop_map(|v| v * 100),
            (5u64..6).prop_map(|v| v),
        ];
        let mut rng = crate::test_runner::rng_for("oneof");
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == 100 || v == 200 || v == 5, "unexpected {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(a in 0u64..10, b in 0u64..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(a + b + 1, 0);
        }
    }
}
