//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment for this workspace has no network access and no
//! crates.io mirror, so the handful of `rand` APIs the workspace actually
//! uses are reimplemented here and wired in as a path dependency. The
//! algorithms are *not* bit-compatible with upstream `rand` — every
//! deterministic artifact in the repository (golden files, seeded tests)
//! was generated against this implementation.
//!
//! Provided surface:
//! - [`RngCore`] / [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill_bytes`)
//! - [`SeedableRng`] (`from_seed`, `seed_from_u64`)
//! - [`seq::SliceRandom`] (`shuffle`, `choose`)

use std::ops::{Range, RangeInclusive};

/// The low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and cheap internal mixing.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
///
/// Floats are uniform in `[0, 1)`; integers uniform over the full domain.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `Rng::gen_range` can sample uniformly between two bounds.
///
/// Mirrors rand's `SampleUniform` so that the blanket `SampleRange`
/// impls below are generic over `T` — that generic shape is what lets
/// type inference unify `rng.gen_range(0..6)` with a `usize` indexing
/// context, exactly as the real crate does.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value in `[low, high)` (or `[low, high]` if `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range on an empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with standard-distribution values.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for slot in dest.iter_mut() {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Named generators (only what the workspace needs).

    use super::{RngCore, SeedableRng, SplitMix64};

    /// A small, fast, non-cryptographic generator (SplitMix64-based).
    #[derive(Debug, Clone)]
    pub struct SmallRng(SplitMix64);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(SplitMix64::new(u64::from_le_bytes(seed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
