//! Offline ChaCha-based generators for the vendored `rand` traits.
//!
//! A faithful ChaCha keystream implementation (IETF variant, 64-bit block
//! counter) exposed through the [`rand::RngCore`]/[`rand::SeedableRng`]
//! traits. Seeding goes through `SeedableRng::seed_from_u64`'s SplitMix64
//! expansion, so streams are *not* bit-compatible with the upstream
//! `rand_chacha` crate — they only need to be self-consistent for this
//! workspace's deterministic tests and golden files.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha block function with `ROUNDS` total rounds.
fn block<const ROUNDS: usize>(input: &[u32; 16]) -> [u32; 16] {
    let mut state = *input;
    for _ in 0..ROUNDS / 2 {
        // Column rounds.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (out, inp) in state.iter_mut().zip(input) {
        *out = out.wrapping_add(*inp);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Key + counter + nonce words 4..16 of the ChaCha state.
            key: [u32; 8],
            /// 64-bit block counter (words 12–13).
            counter: u64,
            /// Buffered keystream block.
            buf: [u32; 16],
            /// Next unread word in `buf` (16 = exhausted).
            pos: usize,
        }

        impl $name {
            /// Total keystream words consumed since seeding.
            ///
            /// Together with the original seed this pins down the full
            /// generator state, which is what crash-safe checkpointing
            /// needs: re-seed and [`Self::set_word_offset`] to restore.
            pub fn word_offset(&self) -> u64 {
                // A fresh generator has `counter = 0, pos = 16` (buffer
                // exhausted, no block issued); each refill advances the
                // counter before words are read, so consumed words are
                // `counter·16 + pos − 16` throughout.
                self.counter
                    .wrapping_mul(16)
                    .wrapping_add(self.pos as u64)
                    .wrapping_sub(16)
            }

            /// Fast-forwards a freshly seeded generator so that exactly
            /// `n` keystream words have been consumed.
            ///
            /// Restores the state captured by [`Self::word_offset`] when
            /// applied to a generator seeded identically.
            pub fn set_word_offset(&mut self, n: u64) {
                self.counter = n / 16;
                self.pos = 16; // force a refill on the next word
                for _ in 0..(n % 16) {
                    self.next_u32();
                }
            }

            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[0] = 0x6170_7865;
                state[1] = 0x3320_646e;
                state[2] = 0x7962_2d32;
                state[3] = 0x6b20_6574;
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                // Words 14–15 (nonce) stay zero: one stream per seed.
                self.buf = block::<$rounds>(&state);
                self.counter = self.counter.wrapping_add(1);
                self.pos = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.pos >= 16 {
                    self.refill();
                }
                let word = self.buf[self.pos];
                self.pos += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name { key, counter: 0, buf: [0; 16], pos: 16 }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds: the workspace's deterministic workhorse.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha20_reference_block() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our layout keeps the nonce at zero and
        // the counter 64-bit, so check the keystream structure instead:
        // a fresh generator consumes exactly one block per 16 words.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha20Rng::from_seed([0u8; 32]);
        let repeat: Vec<u32> = (0..16).map(|_| again.next_u32()).collect();
        assert_eq!(first, repeat);
        assert_ne!(first[..8], first[8..], "keystream must not be degenerate");
    }

    #[test]
    fn word_offset_round_trips_mid_block_and_on_boundaries() {
        for consumed in [0usize, 1, 15, 16, 17, 37, 64] {
            let mut a = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..consumed {
                a.next_u32();
            }
            assert_eq!(a.word_offset(), consumed as u64);
            let mut b = ChaCha8Rng::seed_from_u64(11);
            b.set_word_offset(consumed as u64);
            assert_eq!(b.word_offset(), consumed as u64);
            let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_eq!(va, vb, "restore diverged after {consumed} words");
        }
    }

    #[test]
    fn float_helpers_work_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let n: usize = rng.gen_range(0..10);
        assert!(n < 10);
    }
}
