//! Offline subset of `rand_distr`: the distributions this workspace uses.

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Standard normal via Box–Muller (no cached spare, so sampling is a pure
/// function of the RNG stream position — important for determinism).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`.
    ///
    /// # Errors
    /// Fails when `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if std_dev.is_nan() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Builds `exp(N(mu, sigma²))`.
    ///
    /// # Errors
    /// Fails when `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let d = LogNormal::new(0.0, 0.05).unwrap();
        let mut rng = Lcg(5);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean > 0.9 && mean < 1.1, "lognormal(0, .05) mean ≈ 1, got {mean}");
    }

    #[test]
    fn normal_moments_roughly_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = Lcg(11);
        let n = 8000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        assert!((var - 4.0).abs() < 0.5, "var {var}");
    }
}
