//! Offline serialization framework with serde's import surface.
//!
//! The build environment has no crates.io access, so this crate provides
//! the pieces of serde the workspace actually uses — `Serialize`,
//! `Deserialize`, `de::DeserializeOwned` and the two derive macros — over
//! a simplified self-describing data model ([`Content`]). `serde_json`
//! (also vendored) renders [`Content`] to JSON text and back.
//!
//! Deliberate simplifications vs. upstream serde:
//! - One universal in-memory tree ([`Content`]) instead of visitor-driven
//!   zero-copy serialization. Fine at this workspace's artifact sizes.
//! - Non-finite floats serialize to `Null` (as `serde_json` does) and
//!   deserialize back as `NaN` rather than erroring, so labeled/unlabeled
//!   sample round-trips are lossless in spirit.
//! - Only the `#[serde(skip)]` and `#[serde(default = "path")]` field
//!   attributes are honored — the only ones used in this repository.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing value tree every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers widen losslessly, `Null` is NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::F64(v) if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) => {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

/// Looks up a key in serialized map entries (helper for derived code).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }

    /// The standard "missing field" error (helper for derived code).
    pub fn missing_field(ty: &str, field: &str) -> Error {
        Error::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// The standard "type mismatch" error (helper for derived code).
    pub fn invalid_type(ty: &str, expected: &str) -> Error {
        Error::custom(format!("invalid type while deserializing {ty}: expected {expected}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Serializes `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a content tree.
    ///
    /// # Errors
    /// Returns an [`Error`] when the tree shape does not match the type.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization traits (`serde::de` import compatibility).

    pub use crate::{Deserialize, Error};

    /// Marker for types deserializable without borrowing the input — every
    /// [`Deserialize`] type here, since [`crate::Content`] is owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization traits (`serde::ser` import compatibility).

    pub use crate::{Error, Serialize};
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_u64().ok_or_else(|| Error::invalid_type(stringify!($t), "unsigned integer"))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_i64().ok_or_else(|| Error::invalid_type(stringify!($t), "integer"))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as f64;
                if v.is_finite() { Content::F64(v) } else { Content::Null }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                c.as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::invalid_type(stringify!($t), "number"))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::invalid_type("bool", "boolean")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str().map(str::to_string).ok_or_else(|| Error::invalid_type("String", "string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

/// Deserializing into `&'static str` works by interning: each distinct
/// string is leaked exactly once and reused afterwards. The workspace only
/// uses this for small fixed vocabularies (axis names such as `"m"`/`"rk"`),
/// so the leak is bounded by the vocabulary size.
impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::invalid_type("&str", "string"))?;
        Ok(intern_static(s))
    }
}

fn intern_static(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(|| Mutex::new(HashSet::new())).lock().unwrap();
    match pool.get(s) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::invalid_type("char", "string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::invalid_type("char", "one-character string")),
        }
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::invalid_type("Vec", "sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let seq = c.as_seq().ok_or_else(|| Error::invalid_type("array", "sequence"))?;
        if seq.len() != N {
            return Err(Error::custom(format!("expected {N} elements, got {}", seq.len())));
        }
        let items: Result<Vec<T>, Error> = seq.iter().map(T::from_content).collect();
        items?.try_into().map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let seq = c.as_seq().ok_or_else(|| Error::invalid_type("tuple", "sequence"))?;
                let expected = [$(stringify!($n)),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, got {} elements", seq.len())));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        // Deterministic artifact bytes regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::invalid_type("HashMap", "map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::invalid_type("BTreeMap", "map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for std::sync::atomic::AtomicU64 {
    fn to_content(&self) -> Content {
        Content::U64(self.load(std::sync::atomic::Ordering::Relaxed))
    }
}

impl Deserialize for std::sync::atomic::AtomicU64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_u64()
            .map(std::sync::atomic::AtomicU64::new)
            .ok_or_else(|| Error::invalid_type("AtomicU64", "unsigned integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(f64::NAN.to_content(), Content::Null);
        assert_eq!(f64::INFINITY.to_content(), Content::Null);
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<u32>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let a = [1u64, 2, 3, 4, 5];
        assert_eq!(<[u64; 5]>::from_content(&a.to_content()).unwrap(), a);
        let t = (1u32, -2i64, 0.5f64);
        assert_eq!(<(u32, i64, f64)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn wrong_arity_rejected() {
        let a = [1u64, 2, 3];
        assert!(<[u64; 5]>::from_content(&a.to_content()).is_err());
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_content() {
            Content::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
