//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The macros parse the item declaration directly from the token stream
//! (no `syn`/`quote` available offline) and emit impls of the shim's
//! `to_content`/`from_content` traits. Supported shapes — the ones this
//! workspace uses:
//!
//! - structs with named fields, honoring `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]` / `#[serde(default = "path")]`
//! - tuple structs (newtypes serialize transparently, like serde)
//! - enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like serde's default)
//!
//! Generic type parameters are not supported and fail with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field attribute set.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default_path: Option<String>,
}

/// A named or positional field.
struct Field {
    name: String,
    attrs: FieldAttrs,
}

/// Enum variant payload shapes.
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed item.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => serialize_named_struct(name, fields),
        Item::TupleStruct { name, arity } => serialize_tuple_struct(name, *arity),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => deserialize_named_struct(name, fields),
        Item::TupleStruct { name, arity } => deserialize_tuple_struct(name, *arity),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Deserialize impl")
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes, visibility and auxiliary keywords.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found"),
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline shim): generic types are not supported, found on `{name}`");
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && is_struct => {
            Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
            Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && !is_struct => {
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        other => panic!("serde_derive: unsupported item body for `{name}`: {other:?}"),
    }
}

/// Parses `#[serde(...)]` contents already split from the attribute.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // Shape: serde ( skip , default = "path" , ... )
    let Some(TokenTree::Ident(tag)) = inner.first() else { return };
    if tag.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                attrs.skip = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                j += 1;
                if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    j += 1;
                    if let Some(TokenTree::Literal(lit)) = args.get(j) {
                        let raw = lit.to_string();
                        attrs.default_path = Some(raw.trim_matches('"').to_string());
                        j += 1;
                    }
                } else {
                    // Bare `default`: std Default.
                    attrs.default_path = Some(String::new());
                }
            }
            _ => j += 1,
        }
    }
}

/// Consumes attributes at `tokens[i..]`, returning the parsed serde attrs
/// and the index after them.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (FieldAttrs, usize) {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            parse_serde_attr(g, &mut attrs);
            i += 1;
        }
    }
    (attrs, i)
}

/// Skips a `pub` / `pub(...)` visibility marker if present.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type (field-type position) up to a top-level `,`.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, next) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        i += 1; // the comma (or past the end)
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (_, next) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        i += 1; // comma
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, next) = take_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(
                    parse_named_fields(g.stream()).into_iter().map(|f| f.name).collect(),
                )
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant and the separating comma.
        while i < tokens.len()
            && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
        {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// --- code generation -----------------------------------------------------

fn serialize_named_struct(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        pushes.push_str(&format!(
            "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n})));\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_content(&self) -> ::serde::Content {{\n\
             let mut entries: Vec<(String, ::serde::Content)> = Vec::new();\n\
             {pushes}\
             ::serde::Content::Map(entries)\n\
           }}\n\
         }}"
    )
}

fn deserialize_named_struct(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            match &f.attrs.default_path {
                Some(path) if !path.is_empty() => inits.push_str(&format!("{n}: {path}(),\n")),
                _ => inits.push_str(&format!("{n}: ::core::default::Default::default(),\n")),
            }
        } else {
            let fallback = match &f.attrs.default_path {
                Some(path) if !path.is_empty() => format!("{path}()"),
                Some(_) => "::core::default::Default::default()".to_string(),
                None => format!("return Err(::serde::Error::missing_field(\"{name}\", \"{n}\"))"),
            };
            inits.push_str(&format!(
                "{n}: match ::serde::content_get(map, \"{n}\") {{\n\
                   Some(v) => ::serde::Deserialize::from_content(v)?,\n\
                   None => {fallback},\n\
                 }},\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
             let map = c.as_map().ok_or_else(|| ::serde::Error::invalid_type(\"{name}\", \"map\"))?;\n\
             Ok({name} {{\n\
               {inits}\
             }})\n\
           }}\n\
         }}"
    )
}

fn serialize_tuple_struct(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        // Newtype structs serialize transparently, matching serde.
        "::serde::Serialize::to_content(&self.0)".to_string()
    } else {
        let items: Vec<String> =
            (0..arity).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
        format!("::serde::Content::Seq(vec![{}])", items.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn deserialize_tuple_struct(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
            .collect();
        format!(
            "let seq = c.as_seq().ok_or_else(|| ::serde::Error::invalid_type(\"{name}\", \"sequence\"))?;\n\
             if seq.len() != {arity} {{\n\
               return Err(::serde::Error::custom(format!(\"expected {arity} elements for {name}, got {{}}\", seq.len())));\n\
             }}\n\
             Ok({name}({items}))",
            items = items.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
            )),
            VariantKind::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),\n"
            )),
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_content({b})")).collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Seq(vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", ")
                ));
            }
            VariantKind::Struct(field_names) => {
                let binds = field_names.join(", ");
                let items: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Map(vec![{items}]))]),\n",
                    items = items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_content(&self) -> ::serde::Content {{\n\
             match self {{\n\
               {arms}\
             }}\n\
           }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
            }
            VariantKind::Tuple(1) => data_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(payload)?)),\n"
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                       let seq = payload.as_seq().ok_or_else(|| ::serde::Error::invalid_type(\"{name}::{vn}\", \"sequence\"))?;\n\
                       if seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}::{vn}\")); }}\n\
                       Ok({name}::{vn}({items}))\n\
                     }}\n",
                    items = items.join(", ")
                ));
            }
            VariantKind::Struct(field_names) => {
                let inits: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_content(::serde::content_get(m, \"{f}\").ok_or_else(|| ::serde::Error::missing_field(\"{name}::{vn}\", \"{f}\"))?)?"
                        )
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                       let m = payload.as_map().ok_or_else(|| ::serde::Error::invalid_type(\"{name}::{vn}\", \"map\"))?;\n\
                       Ok({name}::{vn} {{ {inits} }})\n\
                     }}\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
             match c {{\n\
               ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
               }},\n\
               ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                   {data_arms}\
                   other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
               }}\n\
               _ => Err(::serde::Error::invalid_type(\"{name}\", \"string or single-entry map\")),\n\
             }}\n\
           }}\n\
         }}"
    )
}
