//! Offline JSON over the vendored serde shim's [`serde::Content`] model.
//!
//! Formatting rules match `serde_json` closely enough for this workspace:
//! compact or 2-space-indented pretty output, floats printed with Rust's
//! shortest round-trip formatting (`{:?}`), non-finite floats as `null`.

use serde::de::DeserializeOwned;
use serde::{Content, Serialize};
use std::io::{Read, Write};

/// A JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl std::fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --- serialization -------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest string that parses back exactly.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_content(out: &mut String, c: &Content, pretty: bool, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => push_f64(out, *v),
        Content::Str(s) => push_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if pretty {
                        // newline added by pad below
                    }
                }
                pad(out, indent + 1);
                write_content(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                push_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_content(out, v, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Currently infallible for the supported data model; kept fallible for
/// serde_json API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), false, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), true, 0);
    Ok(out)
}

/// Writes compact JSON to `writer`.
///
/// # Errors
/// Propagates I/O errors.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes pretty JSON to `writer`.
///
/// # Errors
/// Propagates I/O errors.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// --- deserialization -----------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into the raw content tree.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON.
pub fn parse_content(text: &str) -> Result<Content> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    Ok(T::from_content(&parse_content(text)?)?)
}

/// Deserializes a value from a JSON byte slice.
///
/// # Errors
/// See [`from_str`].
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(text)
}

/// Deserializes a value from a reader.
///
/// # Errors
/// Propagates I/O errors and parse errors.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_value() {
        let v: Vec<(String, f64)> =
            vec![("a".into(), 1.5), ("weird \"key\"\n".into(), -0.25)];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u64, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        let back: Vec<Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let xs = vec![1.0e-9f64, 0.1 + 0.2, f64::MAX, 5e-324, -0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn nan_becomes_null_and_back() {
        let xs = vec![f64::NAN];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[null]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert!(back[0].is_nan());
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \u{1F600} \t \"q\" \\".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("{\"a\" 1}").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1 2]").is_err());
    }

    #[test]
    fn integers_preserve_signedness() {
        let text = "[-3, 4, 18446744073709551615]";
        let c = parse_content(text).unwrap();
        let seq = c.as_seq().unwrap();
        assert_eq!(seq[0].as_i64(), Some(-3));
        assert_eq!(seq[1].as_u64(), Some(4));
        assert_eq!(seq[2].as_u64(), Some(u64::MAX));
    }
}
